"""Engine instrumentation for tests and benchmarks.

Not part of the execution path: wrappers here observe engine traffic so
the test suite and ``benchmarks/bench_batch_executor.py`` can verify
optimizer claims (scan counts) at the engine boundary instead of
trusting an executor's self-reported statistics.
"""

from __future__ import annotations

import threading
import time

from repro.engine.batch import TEMP_PREFIX
from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Schema, Table
from repro.sql.ast import Query


class CountingEngine(Engine):
    """Transparent wrapper counting executions per FROM table.

    Counter updates are mutex-guarded so the wrapper can instrument a
    worker pool's traffic without dropping increments.
    """

    def __init__(self, inner: Engine) -> None:
        self._inner = inner
        # repro: allow(RA106) — counter guard for the test/bench scan
        # instrumentation; spawns no threads.
        self._lock = threading.Lock()
        self.name = f"counting({inner.name})"
        self.scans: dict[str, int] = {}
        #: Subset of ``scans``: materializations that carried a row
        #: range, i.e. per-shard base scans of sharded execution.
        self.shard_scans: dict[str, int] = {}

    @property
    def inner(self) -> Engine:
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    @property
    def thread_safe(self) -> bool:  # type: ignore[override]
        return self._inner.thread_safe

    @property
    def parallel_scans(self) -> bool:  # type: ignore[override]
        return self._inner.parallel_scans

    def base_scans(self) -> int:
        """Executions that read a base (non-temporary) table."""
        with self._lock:
            return sum(
                count
                for table, count in self.scans.items()
                if not table.startswith(TEMP_PREFIX)
            )

    def reset(self) -> None:
        with self._lock:
            self.scans.clear()
            self.shard_scans.clear()

    def load_table(self, table: Table) -> None:
        self._inner.load_table(table)

    def unload_table(self, name: str) -> None:
        self._inner.unload_table(name)

    def table_schema(self, name: str) -> Schema | None:
        return self._inner.table_schema(name)

    def table_row_count(self, name: str) -> int | None:
        return self._inner.table_row_count(name)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        if row_range is None:  # legacy three-argument inners work
            done = self._inner.materialize_filtered(name, source, predicate)
        else:
            done = self._inner.materialize_filtered(
                name, source, predicate, row_range
            )
        if done:
            # A native shared scan reads the base table once; a sharded
            # scan reads one row range, counted per shard so benchmarks
            # can report per-shard scan counts.
            with self._lock:
                self.scans[source] = self.scans.get(source, 0) + 1
                if row_range is not None:
                    self.shard_scans[source] = (
                        self.shard_scans.get(source, 0) + 1
                    )
        return done

    def create_index(self, table: str, column: str) -> None:
        self._inner.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        with self._lock:
            for table in query.table_names():  # joins scan every table
                self.scans[table] = self.scans.get(table, 0) + 1
        return self._inner.execute(query)

    def close(self) -> None:
        self._inner.close()


class DispatchLatencyEngine(Engine):
    """Adds a fixed per-call latency, modeling a remote DBMS round trip.

    The engines here are in-process, but the deployments the paper
    benchmarks stand in for are client/server: every query crosses a
    network. This wrapper charges that round trip (a GIL-releasing
    sleep) on each ``execute``/``materialize_filtered`` call, which is
    what makes concurrency benchmarks honest on machines where
    CPU-bound work cannot overlap — latency overlap is real on any core
    count, and it is the dominant win for interactive dashboards.

    The wrapper is thread-safe regardless of its inner engine: round
    trips overlap freely, while calls into a non-thread-safe inner
    serialize through its slot-gating wrapper
    (:func:`repro.concurrency.policy.slot_gated`) — the same leaf
    discipline :class:`~repro.engine.cache.CachedEngine` uses.
    """

    thread_safe = True
    #: Round trips overlap even when compute cannot, so scheduling
    #: extra workers at a latency-bound engine is always profitable.
    parallel_scans = True

    def __init__(self, inner: Engine, latency_ms: float) -> None:
        from repro.concurrency.policy import slot_gated

        self._inner = inner
        self._gated = slot_gated(inner)
        self._latency_s = max(0.0, latency_ms) / 1000.0
        self.latency_ms = max(0.0, latency_ms)
        self.name = inner.name  # transparent: results carry the real name

    @property
    def inner(self) -> Engine:
        return self._inner

    @property
    def supports_indexes(self) -> bool:  # type: ignore[override]
        return self._inner.supports_indexes

    def _round_trip(self) -> None:
        if self._latency_s > 0.0:
            time.sleep(self._latency_s)

    def load_table(self, table: Table) -> None:
        self._gated.load_table(table)

    def unload_table(self, name: str) -> None:
        self._gated.unload_table(name)

    def table_schema(self, name: str) -> Schema | None:
        return self._gated.table_schema(name)

    def table_row_count(self, name: str) -> int | None:
        return self._gated.table_row_count(name)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        self._round_trip()  # every shard's scan pays its own round trip
        if row_range is None:  # legacy three-argument inners work
            return self._gated.materialize_filtered(name, source, predicate)
        return self._gated.materialize_filtered(
            name, source, predicate, row_range
        )

    def create_index(self, table: str, column: str) -> None:
        self._gated.create_index(table, column)

    def execute(self, query: Query) -> ResultSet:
        self._round_trip()
        return self._gated.execute(query)

    def close(self) -> None:
        self._inner.close()
