"""Operator-at-a-time materializing column store (MonetDB stand-in).

MonetDB executes queries as a sequence of full-column (BAT) operations,
materializing every intermediate. This engine mimics that profile:

- each atomic WHERE conjunct is evaluated over the *entire* column and
  materialized as a candidate index vector, then the vectors are
  intersected (no short-circuiting across predicates);
- every column a later operator needs is materialized with ``take``
  before that operator runs;
- grouping is sort-based over fully materialized key columns.

The resulting behaviour matches MonetDB's: scans and single-filter
aggregations are fast, but filter-heavy queries (the IDEBench workload
shape, Table 4) pay for materializing each predicate separately.
"""

from __future__ import annotations

import numpy as np

from repro.engine.expressions import (
    VectorContext,
    evaluate_mask,
    evaluate_row,
    evaluate_values,
)
from repro.engine.interface import DatabaseBackedEngine, ResultSet
from repro.engine.planner import (
    AggregatePlan,
    ProjectionPlan,
    placeholder_row,
    plan_query,
)
from repro.engine.columnstore import (
    _canonical_key,
    _columns_to_rows,
    _finish_tagged,
    _finish_vector,
    _maybe_int,
    _object_aggregate,
    _distinct_aggregate,
    filtered_table,
)
from repro.engine.indexes import TableIndexes, candidate_indices
from repro.engine.table import Table
from repro.sql.ast import FuncCall, Query, Star, conjuncts


class MatStoreEngine(DatabaseBackedEngine):
    """Pure-Python operator-at-a-time engine with full materialization."""

    name = "matstore"
    supports_indexes = True
    # Same float64/pickle export shape as the vectorstore; worker-side
    # shard engines simply have no secondary indexes (results are
    # identical, indexes only change speed).
    supports_process_shards = True
    process_shard_mode = "shm"

    def __init__(self) -> None:
        super().__init__()
        self._indexes: dict[str, TableIndexes] = {}

    def load_table(self, table: Table) -> None:
        super().load_table(table)
        self._indexes.pop(table.name, None)  # stale indexes die with the data

    def unload_table(self, name: str) -> None:
        super().unload_table(name)
        self._indexes.pop(name, None)

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        if source not in self._db:
            return False
        # Route through load_table: replacing a table must drop its
        # stale secondary indexes exactly like a load does.
        self.load_table(
            filtered_table(self._db.table(source), name, predicate, row_range)
        )
        return True

    def create_index(self, table: str, column: str) -> None:
        indexes = self._indexes.get(table)
        if indexes is None:
            indexes = TableIndexes(self._db.table(table))
            self._indexes[table] = indexes
        indexes.create(column)

    def execute(self, query: Query) -> ResultSet:
        from repro.engine.derived import rewrite_query

        if query.joins:
            from repro.engine.join import resolve_joins

            table, query = resolve_joins(self._db, query)
            indexes = None  # base-table indexes do not survive the join
        else:
            table = self._db.table(query.from_table.name)
            indexes = self._indexes.get(table.name)
        arrays = {name: table.array(name) for name in table.schema.names}
        query = rewrite_query(query, table, arrays)
        base = VectorContext(arrays, table.num_rows)
        candidates = self._select_candidates(base, query, indexes)
        ctx = VectorContext(
            {name: arr[candidates] for name, arr in base.arrays.items()},
            len(candidates),
        )
        plan = plan_query(query)
        if isinstance(plan, AggregatePlan):
            return self._aggregate(ctx, plan)
        if plan.select_star:
            plan.output_names = list(table.schema.names)
            columns = [ctx.column(n) for n in plan.output_names]
        else:
            columns = [evaluate_values(e, ctx) for e in plan.item_exprs]
        order_columns = [evaluate_values(e, ctx) for e, _ in plan.order_exprs]
        rows = _columns_to_rows(columns, ctx.num_rows)
        return _finish_vector(rows, order_columns, plan)

    def _select_candidates(
        self,
        ctx: VectorContext,
        query: Query,
        indexes: TableIndexes | None = None,
    ) -> np.ndarray:
        """Materialize one candidate vector per conjunct, then intersect."""
        if query.where is None:
            return np.arange(ctx.num_rows, dtype=np.int64)
        candidates: np.ndarray | None = None
        for predicate in conjuncts(query.where):
            vector: np.ndarray | None = None
            if indexes is not None:
                # An index delivers the conjunct's candidate vector
                # directly, skipping the scan for this operator.
                vector = candidate_indices(indexes, predicate)
            if vector is None:
                mask = evaluate_mask(predicate, ctx)
                vector = np.flatnonzero(mask)  # full materialization per conjunct
            if candidates is None:
                candidates = vector
            else:
                candidates = np.intersect1d(
                    candidates, vector, assume_unique=True
                )
        assert candidates is not None
        return candidates

    def _aggregate(
        self, ctx: VectorContext, plan: AggregatePlan
    ) -> ResultSet:
        num_rows = ctx.num_rows
        if plan.is_global:
            boundaries = [(0, num_rows)]
            order = np.arange(num_rows, dtype=np.int64)
            group_keys: list[tuple[object, ...]] = [()]
        else:
            key_columns = [
                [_canonical_key(v) for v in evaluate_values(e, ctx)]
                for e in plan.key_exprs
            ]
            order, boundaries, group_keys = _sort_groups(key_columns, num_rows)

        # Materialize each aggregate input column once, in sorted order.
        agg_inputs: list[np.ndarray | None] = []
        for call in plan.agg_calls:
            if call.name == "COUNT" and isinstance(call.args[0], Star):
                agg_inputs.append(None)
            else:
                values = evaluate_values(call.args[0], ctx)
                agg_inputs.append(values[order])

        output: list[tuple[tuple[object, ...], tuple[object, ...]]] = []
        for gid, (start, end) in enumerate(boundaries):
            aggs = [
                _run_aggregate(call, inputs, start, end)
                for call, inputs in zip(plan.agg_calls, agg_inputs)
            ]
            context = placeholder_row(group_keys[gid], aggs)
            if plan.having_expr is not None:
                if evaluate_row(plan.having_expr, context) is not True:
                    continue
            values = tuple(evaluate_row(e, context) for e in plan.item_exprs)
            order_keys = tuple(
                evaluate_row(e, context) for e, _ in plan.order_exprs
            )
            output.append((values, order_keys))
        if not output and plan.is_global and num_rows == 0:
            context = placeholder_row(
                (),
                [
                    _run_aggregate(call, inputs, 0, 0)
                    for call, inputs in zip(plan.agg_calls, agg_inputs)
                ],
            )
            keep = (
                plan.having_expr is None
                or evaluate_row(plan.having_expr, context) is True
            )
            if keep:
                values = tuple(
                    evaluate_row(e, context) for e in plan.item_exprs
                )
                order_keys = tuple(
                    evaluate_row(e, context) for e, _ in plan.order_exprs
                )
                output.append((values, order_keys))
        return _finish_tagged(output, plan)


def _sort_groups(
    key_columns: list[list[object]], num_rows: int
) -> tuple[np.ndarray, list[tuple[int, int]], list[tuple[object, ...]]]:
    """Sort-based grouping: returns (permutation, run boundaries, keys)."""
    from repro.engine.types import sort_key

    indices = sorted(
        range(num_rows),
        key=lambda i: tuple(sort_key(col[i]) for col in key_columns),
    )
    order = np.array(indices, dtype=np.int64)
    boundaries: list[tuple[int, int]] = []
    group_keys: list[tuple[object, ...]] = []
    start = 0
    previous: tuple[object, ...] | None = None
    for position, row_index in enumerate(indices):
        key = tuple(col[row_index] for col in key_columns)
        if previous is None:
            previous = key
        elif key != previous:
            boundaries.append((start, position))
            group_keys.append(previous)
            start = position
            previous = key
    if previous is not None:
        boundaries.append((start, num_rows))
        group_keys.append(previous)
    return order, boundaries, group_keys


def _run_aggregate(
    call: FuncCall, inputs: np.ndarray | None, start: int, end: int
) -> object:
    """Aggregate one sorted run [start, end)."""
    count = end - start
    if inputs is None:  # COUNT(*)
        return count
    values = inputs[start:end]
    if call.distinct:
        return _distinct_aggregate(
            call, values, np.zeros(count, dtype=np.int64), 1
        )[0]
    if values.dtype == np.float64:
        valid = values[~np.isnan(values)]
        if call.name == "COUNT":
            return int(valid.size)
        if valid.size == 0:
            return None
        if call.name == "SUM":
            return _maybe_int(float(valid.sum()))
        if call.name == "AVG":
            return float(valid.mean())
        if call.name == "MIN":
            return _maybe_int(float(valid.min()))
        if call.name == "MAX":
            return _maybe_int(float(valid.max()))
    return _object_aggregate(
        call, values, np.zeros(count, dtype=np.int64), 1
    )[0]
