"""Query-execution substrate: four engines behind one interface.

The paper benchmarks PostgreSQL, DuckDB, SQLite, and MonetDB. Offline we
substitute engines that reproduce those systems' *execution models*:

- :class:`~repro.engine.rowstore.RowStoreEngine` — tuple-at-a-time Volcano
  iterators (PostgreSQL stand-in);
- :class:`~repro.engine.columnstore.VectorStoreEngine` — numpy-vectorized
  batch execution (DuckDB stand-in);
- :class:`~repro.engine.matstore.MatStoreEngine` — operator-at-a-time full
  materialization (MonetDB stand-in);
- :class:`~repro.engine.sqlite_engine.SQLiteEngine` — the real ``sqlite3``.

All engines accept the same :class:`~repro.sql.ast.Query` AST and return
the same :class:`~repro.engine.interface.ResultSet`, so the benchmark
harness can swap them freely.
"""

from repro.engine.cache import CachedEngine
from repro.engine.interface import Engine, QueryResult, ResultSet
from repro.engine.registry import available_engines, create_engine
from repro.engine.table import ColumnDef, Schema, Table
from repro.engine.types import DataType

__all__ = [
    "CachedEngine",
    "ColumnDef",
    "DataType",
    "Engine",
    "QueryResult",
    "ResultSet",
    "Schema",
    "Table",
    "available_engines",
    "create_engine",
]
