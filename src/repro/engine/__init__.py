"""Query-execution substrate: four engines behind one interface.

The paper benchmarks PostgreSQL, DuckDB, SQLite, and MonetDB. Offline we
substitute engines that reproduce those systems' *execution models*:

- :class:`~repro.engine.rowstore.RowStoreEngine` — tuple-at-a-time Volcano
  iterators (PostgreSQL stand-in);
- :class:`~repro.engine.columnstore.VectorStoreEngine` — numpy-vectorized
  batch execution (DuckDB stand-in);
- :class:`~repro.engine.matstore.MatStoreEngine` — operator-at-a-time full
  materialization (MonetDB stand-in);
- :class:`~repro.engine.sqlite_engine.SQLiteEngine` — the real ``sqlite3``.

All engines accept the same :class:`~repro.sql.ast.Query` AST and return
the same :class:`~repro.engine.interface.ResultSet`, so the benchmark
harness can swap them freely.

Batch (shared-scan) execution
-----------------------------

A dashboard refresh emits many queries over the same table and filters.
:meth:`Engine.execute_batch` evaluates such a bundle through the
multi-query optimizer in :mod:`repro.engine.batch`: queries are grouped
by (table, normalized WHERE predicate), each group's filter runs as
**one shared scan**, compatible aggregates are fused into one merged
pass, and results are sliced back — byte-identical to sequential
execution, positionally aligned with the input::

    results = engine.execute_batch(state.initial_queries())

With ``multiplan=True``, an *unfiltered* group's fusion classes — the
initial render's one-scan-per-GROUP-BY shape — additionally evaluate
in one combined pass per table (:mod:`repro.engine.multiplan`).

:class:`CachedEngine` additionally caches whole scan groups
(:class:`~repro.engine.cache.ScanGroupCache`), invalidated per table on
``load_table``, so a repeated refresh costs zero engine work. The
execution strategy — batch, workers, shards, multiplan — travels the
whole stack as one :class:`~repro.execution.ExecutionPolicy` value:
``engine.execute_batch(queries, policy)``,
``SessionConfig(policy=...)``, ``BenchmarkConfig(policy=...)``,
``replay_log(..., policy=...)``, and ``--policy PRESET`` on both CLIs
(the per-knob keywords remain as a deprecation shim).
"""

from repro.engine.batch import BatchExecutor, BatchResult, BatchStats
from repro.engine.cache import CachedEngine, ScanGroupCache
from repro.engine.interface import Engine, QueryResult, ResultSet
from repro.engine.multiplan import MultiPlan, build_multiplan
from repro.engine.registry import available_engines, create_engine
from repro.engine.table import ColumnDef, Schema, Table
from repro.engine.types import DataType

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "CachedEngine",
    "ColumnDef",
    "DataType",
    "Engine",
    "MultiPlan",
    "QueryResult",
    "ResultSet",
    "ScanGroupCache",
    "Schema",
    "Table",
    "available_engines",
    "build_multiplan",
    "create_engine",
]
