"""Engine registry: create engines by name.

The harness config names engines by string (Table 3 of the paper names
PostgreSQL, DuckDB, SQLite, MonetDB; see DESIGN.md for the substitution
mapping).
"""

from __future__ import annotations

from typing import Callable

from repro.engine.columnstore import VectorStoreEngine
from repro.engine.interface import Engine
from repro.engine.matstore import MatStoreEngine
from repro.engine.rowstore import RowStoreEngine
from repro.engine.sqlite_engine import SQLiteEngine
from repro.errors import ConfigError

_FACTORIES: dict[str, Callable[[], Engine]] = {
    "rowstore": RowStoreEngine,
    "vectorstore": VectorStoreEngine,
    "matstore": MatStoreEngine,
    "sqlite": SQLiteEngine,
}

#: Which paper DBMS each engine stands in for, used in reports.
PAPER_ANALOGUE = {
    "rowstore": "PostgreSQL (iterator model)",
    "vectorstore": "DuckDB (vectorized)",
    "matstore": "MonetDB (operator-at-a-time)",
    "sqlite": "SQLite (real)",
}


def available_engines() -> list[str]:
    """Names of all registered engines, sorted."""
    return sorted(_FACTORIES)


def create_engine(name: str) -> Engine:
    """Instantiate an engine by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None
    return factory()


def register_engine(name: str, factory: Callable[[], Engine]) -> None:
    """Register a custom engine (extension point for downstream users)."""
    _FACTORIES[name] = factory
