"""Derived temporal columns for the column engines.

Real column stores extract date parts (hour, day, month, ...) with
vectorized kernels; a pure-Python loop per query would mischaracterize
their performance profile. Instead, each Table caches the extracted
part array per (function, column) the first time it is needed, and the
column engines rewrite ``HOUR(ts)``-style calls into references to the
cached derived column before execution — the moral equivalent of a
dictionary-encoded date-part projection.
"""

from __future__ import annotations

import numpy as np

from repro.engine.expressions import apply_scalar_function
from repro.engine.table import Table
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    OrderItem,
    Query,
    SelectItem,
    UnaryOp,
)

#: Functions with cached derived columns.
DERIVABLE = frozenset({"YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "DOW"})

_CACHE_ATTR = "_derived_arrays"


def derived_name(func: str, column: str) -> str:
    return f"__{func.lower()}__{column}"


def derived_array(table: Table, func: str, column: str) -> np.ndarray:
    """Full-length extracted-part array, cached on the table.

    ``func == "EPOCH"`` yields seconds since the Unix epoch, used to
    turn temporal range predicates into float comparisons.
    """
    cache: dict[str, np.ndarray] = getattr(table, _CACHE_ATTR, None)  # type: ignore[assignment]
    if cache is None:
        cache = {}
        setattr(table, _CACHE_ATTR, cache)
    key = derived_name(func, column)
    if key not in cache:
        values = table.column(column)
        if func == "EPOCH":
            cache[key] = np.array(
                [np.nan if v is None else _epoch(v) for v in values],
                dtype=np.float64,
            )
        else:
            cache[key] = np.array(
                [
                    np.nan
                    if v is None
                    else float(apply_scalar_function(func, [v]))
                    for v in values
                ],
                dtype=np.float64,
            )
    return cache[key]


def _epoch(value: object) -> float:
    import datetime as _dt

    if isinstance(value, _dt.datetime):
        return value.timestamp()
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day).timestamp()
    raise TypeError(f"not a temporal value: {value!r}")


def rewrite_query(
    query: Query, table: Table, extra_arrays: dict[str, np.ndarray]
) -> Query:
    """Replace derivable calls with derived-column references.

    Populates ``extra_arrays`` with the backing arrays (full length, to
    be filtered alongside the base columns).
    """

    import datetime as _dt

    from repro.sql.ast import Literal

    def _is_temporal_column(expr: Expression) -> bool:
        return (
            isinstance(expr, Column)
            and expr.name in table.schema
            and table.schema.dtype(expr.name).is_temporal
        )

    def _epoch_operand(column: Column) -> Column:
        key = derived_name("EPOCH", column.name)
        extra_arrays[key] = derived_array(table, "EPOCH", column.name)
        return Column(key)

    def _temporal_literal(expr: Expression) -> Literal | None:
        if isinstance(expr, Literal) and isinstance(expr.value, _dt.date):
            return Literal(_epoch(expr.value))
        return None

    def rewrite(expr: Expression) -> Expression:
        # Temporal range/order predicates become float comparisons over
        # a cached epoch column.
        if (
            isinstance(expr, Between)
            and _is_temporal_column(expr.expr)
        ):
            low = _temporal_literal(expr.low)
            high = _temporal_literal(expr.high)
            if low is not None and high is not None:
                return Between(
                    _epoch_operand(expr.expr), low, high, expr.negated
                )
        if (
            isinstance(expr, BinaryOp)
            and expr.is_comparison
            and _is_temporal_column(expr.left)
        ):
            bound = _temporal_literal(expr.right)
            if bound is not None:
                return BinaryOp(expr.op, _epoch_operand(expr.left), bound)
        if (
            isinstance(expr, FuncCall)
            and expr.name in DERIVABLE
            and len(expr.args) == 1
            and isinstance(expr.args[0], Column)
            and expr.args[0].name in table.schema
            and table.schema.dtype(expr.args[0].name).is_temporal
        ):
            column = expr.args[0].name
            key = derived_name(expr.name, column)
            extra_arrays[key] = derived_array(table, expr.name, column)
            return Column(key)
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name, tuple(rewrite(a) for a in expr.args), expr.distinct
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, InList):
            return InList(
                rewrite(expr.expr),
                tuple(rewrite(v) for v in expr.values),
                expr.negated,
            )
        if isinstance(expr, Between):
            return Between(
                rewrite(expr.expr),
                rewrite(expr.low),
                rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, Like):
            return Like(rewrite(expr.expr), expr.pattern, expr.negated)
        if isinstance(expr, IsNull):
            return IsNull(rewrite(expr.expr), expr.negated)
        return expr

    from dataclasses import replace

    return replace(
        query,
        # Pin each item's output name before rewriting so the result
        # schema is identical to unrewritten execution (goal-coverage
        # bookkeeping matches columns by name).
        select=tuple(
            SelectItem(
                rewrite(item.expr),
                item.alias or item.output_name(position),
            )
            for position, item in enumerate(query.select)
        ),
        where=rewrite(query.where) if query.where is not None else None,
        group_by=tuple(rewrite(e) for e in query.group_by),
        having=rewrite(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(rewrite(o.expr), o.descending) for o in query.order_by
        ),
    )
