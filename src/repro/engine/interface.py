"""Engine interface and result representation.

Every engine implements :class:`Engine`: load tables, execute a
:class:`~repro.sql.ast.Query`, return a :class:`ResultSet`. Timing is
captured by :meth:`Engine.execute_timed`, which is what the benchmark
harness calls — query duration is the paper's primary metric (§6.2.5).
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field

from repro.engine.table import Database, Schema, Table
from repro.sql.ast import Query
from repro.telemetry import metrics as _metrics


class ResultSet:
    """An ordered relation: column names plus rows of Python values."""

    def __init__(self, columns: list[str], rows: list[tuple[object, ...]]) -> None:
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def column(self, name: str) -> list[object]:
        """Values of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {self.columns}"
            ) from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def cell_set(self, precision: int = 9) -> frozenset[tuple[str, object]]:
        """Set of (column, normalized value) cells.

        The result-equivalence checker uses this to test whether one
        result is *covered* by another regardless of row/column order
        (§4.1.2 "Result Equivalence").
        """
        cells: set[tuple[str, object]] = set()
        for row in self.rows:
            for name, value in zip(self.columns, row):
                cells.add((name, normalize_value(value, precision)))
        return frozenset(cells)

    def row_set(self, precision: int = 9) -> frozenset[tuple[object, ...]]:
        """Order-insensitive multiset-free view of rows (set semantics)."""
        return frozenset(
            tuple(normalize_value(v, precision) for v in row)
            for row in self.rows
        )

    def sorted_rows(self, precision: int = 9) -> list[tuple[object, ...]]:
        """Rows normalized and deterministically sorted (for comparisons)."""
        from repro.engine.types import sort_key

        normalized = [
            tuple(normalize_value(v, precision) for v in row)
            for row in self.rows
        ]
        return sorted(normalized, key=lambda r: tuple(sort_key(v) for v in r))

    def __repr__(self) -> str:
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


def normalize_value(value: object, precision: int = 9) -> object:
    """Normalize a cell value for cross-engine comparison.

    Floats are rounded (and integral floats become ints) so that e.g.
    SQLite's ``2.0`` equals the row store's ``2``. NaN becomes ``None``.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if math.isnan(value):
            return None
        rounded = round(value, precision)
        if rounded == int(rounded) and abs(rounded) < 1e15:
            return int(rounded)
        return rounded
    return value


@dataclass
class QueryResult:
    """A result set plus execution metadata, the harness's unit of record."""

    result: ResultSet
    duration_ms: float
    engine: str
    sql: str
    rows_returned: int = field(init=False)

    def __post_init__(self) -> None:
        self.rows_returned = len(self.result)


class Engine(abc.ABC):
    """Abstract DBMS wrapper."""

    #: Short identifier used in configs, logs, and reports.
    name: str = "abstract"

    #: Whether :meth:`create_index` is implemented. The paper's setup
    #: applies no indexing (§6.2.2); engines that support it make that
    #: choice ablatable.
    supports_indexes: bool = False

    #: Whether the engine may be invoked from multiple threads
    #: concurrently without corruption. Callers must serialize access
    #: to engines that leave this ``False`` (see
    #: :func:`repro.concurrency.policy.execution_slot`).
    thread_safe: bool = False

    #: Whether concurrent invocations overlap actual compute (e.g. the
    #: engine releases the GIL). Drives the scan-group executor's
    #: decision to schedule an engine's groups in parallel rather than
    #: as a serialized queue.
    parallel_scans: bool = False

    #: Whether the engine can export table snapshots for process-backed
    #: shard execution (:mod:`repro.concurrency.procpool`). Engines
    #: that advertise this must also implement :meth:`table_version`
    #: and set :attr:`process_shard_mode`.
    supports_process_shards: bool = False

    #: How the engine's tables travel to worker processes: ``"shm"``
    #: (column arrays in shared-memory segments, sliced zero-copy per
    #: shard), ``"pickle"`` (whole-column pickle blob — the documented
    #: slow path for engines whose execution depends on exact Python
    #: object arithmetic), or ``"file"`` (a database snapshot file the
    #: workers reopen). ``None`` when process shards are unsupported.
    process_shard_mode: str | None = None

    @abc.abstractmethod
    def load_table(self, table: Table) -> None:
        """Register (or replace) a table in the engine."""

    def create_index(self, table: str, column: str) -> None:
        """Build a secondary index on ``table.column``.

        Engines advertise support via :attr:`supports_indexes`; the
        default implementation refuses rather than silently ignoring
        the request.
        """
        from repro.errors import ExecutionError

        raise ExecutionError(
            f"engine {self.name!r} does not support secondary indexes"
        )

    def unload_table(self, name: str) -> None:
        """Drop a previously loaded table.

        The batch executor uses this to discard the temporary filtered
        relations it materializes for shared scans. Engines that cannot
        drop tables refuse; the executor then leaves the temp relation
        in place (a later shared scan of the same group replaces it,
        but distinct filters accumulate), so engines that implement
        :meth:`load_table` should implement this too.
        """
        from repro.errors import ExecutionError

        raise ExecutionError(
            f"engine {self.name!r} does not support unloading tables"
        )

    def materialize_filtered(
        self, name, source: str, predicate, row_range=None
    ) -> bool:
        """Materialize ``source`` rows satisfying ``predicate`` as ``name``.

        The shared-scan fast path: engines that can filter internally
        (SQLite via ``CREATE TABLE AS``, the pure-Python stores via
        column slicing) build the temporary relation without shuttling
        rows through Python, preserving base-table row order. Returns
        ``False`` when unsupported; the batch executor then falls back
        to ``SELECT * … WHERE …`` plus :meth:`load_table`.

        ``row_range`` makes the scan shard-aware: a ``(start, stop)``
        pair restricts it to that half-open range of base row
        positions, so each shard's scan reads only its slice
        (:mod:`repro.sharding`). ``predicate`` may be ``None`` when a
        range is given (an unfiltered shard). Engines that report a
        row count from :meth:`table_row_count` MUST honor
        ``row_range`` — the sharded executor gates on that contract.
        """
        return False

    def table_row_count(self, name: str) -> int | None:
        """Row count of a loaded table, or ``None`` when unknown.

        The sharded executor partitions tables by row range and needs
        the extent up front. Returning ``None`` (the default, and what
        any wrapper that does not explicitly delegate inherits) marks
        the engine unshardable, so sharding degrades safely to the
        one-task-per-group path rather than guessing.
        """
        return None

    def table_schema(self, name: str) -> Schema | None:
        """Schema of a loaded table, or ``None`` when unknown.

        The batch executor needs the base table's schema to type the
        shared-scan materialization; engines that cannot answer return
        ``None`` and batch execution degrades gracefully to per-query
        scans.
        """
        return None

    def table_version(self, name: str) -> int | None:
        """Monotonic generation of a loaded table, or ``None``.

        Process-backed execution exports a table to shared memory once
        per generation and keys the export on this value; a table whose
        version it cannot learn is never exported (the policy degrades
        to the thread backend). The default — and what any wrapper that
        does not delegate inherits — is ``None``: no generation, no
        export, safe degradation.
        """
        return None

    def table_object(self, name: str) -> Table | None:
        """The in-memory :class:`Table` backing ``name``, or ``None``.

        The process-shard exporter reads column storage directly when
        building ``"shm"``/``"pickle"`` exports; engines that do not
        keep an in-memory Table (or cannot share it) return ``None``
        and only file-mode export remains available to them.
        """
        return None

    @abc.abstractmethod
    def execute(self, query: Query) -> ResultSet:
        """Execute a query and return its result."""

    def execute_timed(self, query: Query) -> QueryResult:
        """Execute a query, measuring wall-clock duration in milliseconds.

        The measurement is the single per-query timing authority: when
        telemetry is installed it feeds the ``engine.query_ms``
        histogram (labeled by engine), so no caller needs its own
        ad-hoc stopwatch around engine calls.
        """
        from repro.sql.formatter import format_query

        start = time.perf_counter()
        result = self.execute(query)
        duration_ms = (time.perf_counter() - start) * 1000.0
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.observe("engine.query_ms", duration_ms, engine=self.name)
        return QueryResult(
            result=result,
            duration_ms=duration_ms,
            engine=self.name,
            sql=format_query(query),
        )

    def execute_batch(
        self,
        queries: list[Query],
        policy=None,
        *,
        workers: int | None = None,
        shards: int | None = None,
        multiplan: bool | None = None,
    ) -> list[QueryResult]:
        """Execute a batch of queries under one execution policy.

        ``policy`` (an :class:`~repro.execution.ExecutionPolicy` or a
        preset name) decides the strategy; the default routes through
        the shared-scan optimizer on a single worker. Results are
        positionally aligned with ``queries`` and identical to calling
        :meth:`execute_timed` on each query in turn, for *every*
        policy — only scheduling and scan counts change:

        - ``policy.batch`` groups queries that read the same table
          through the same (normalized) filter and evaluates each group
          with one shared scan (:mod:`repro.engine.batch`);
          ``batch=False`` runs one engine call per query.
        - ``policy.workers > 1`` schedules independent scan groups over
          a worker pool
          (:class:`repro.concurrency.executor.ScanGroupExecutor`),
          reassembling results in request order.
        - ``policy.shards > 1`` partitions each shardable group's base
          scan into row-range shards — one task per (group, shard),
          merged via partial-aggregate rollup (:mod:`repro.sharding`).
        - ``policy.multiplan`` evaluates an unfiltered group's fusion
          classes — the initial render's one-scan-per-GROUP-BY shape —
          in a single combined pass per group
          (:mod:`repro.engine.multiplan`), composing with both knobs
          above.

        The per-knob keywords are deprecated; they map onto the
        equivalent policy (:func:`~repro.execution.resolve_policy`).
        """
        from repro.execution import ExecutionPolicy, resolve_policy

        policy = resolve_policy(
            policy,
            api="Engine.execute_batch",
            default=ExecutionPolicy(),
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        if not policy.batch:
            # execute_all is the one sequential-policy dispatch: a
            # plain per-query loop at workers=1, an overlapped ordered
            # map on engines that tolerate it otherwise.
            from repro.concurrency.sessions import execute_all

            return execute_all(self, list(queries), workers=policy.workers)
        from repro.engine.batch import BatchExecutor

        if (
            policy.workers > 1
            or policy.shards > 1
            or policy.backend == "processes"
        ):
            from repro.concurrency.executor import ScanGroupExecutor

            executor = ScanGroupExecutor(self, policy=policy)
            try:
                return executor.run(queries).results
            finally:
                executor.close()
        return BatchExecutor(self, policy=policy).run(queries).results

    def close(self) -> None:
        """Release engine resources (default: nothing to do)."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DatabaseBackedEngine(Engine):
    """Base for the pure-Python engines that keep tables in a Database.

    Provides the table-lifecycle surface (load/unload/schema lookup)
    over a shared :class:`~repro.engine.table.Database`; subclasses
    supply the execution model and may extend load/unload (e.g. to
    drop secondary indexes with the data).
    """

    def __init__(self) -> None:
        self._db = Database()

    def load_table(self, table: Table) -> None:
        self._db.add(table)

    def unload_table(self, name: str) -> None:
        self._db.remove(name)

    def table_schema(self, name: str) -> Schema | None:
        if name not in self._db:
            return None
        return self._db.table(name).schema

    def table_row_count(self, name: str) -> int | None:
        if name not in self._db:
            return None
        return self._db.table(name).num_rows

    def table_version(self, name: str) -> int | None:
        return self._db.version(name)

    def table_object(self, name: str) -> Table | None:
        if name not in self._db:
            return None
        return self._db.table(name)
