"""Shared-scan batch query execution (multi-query optimization).

A dashboard refresh emits a bundle of queries that overlap heavily: same
base table, same AND-ed widget filters, different group-bys and
aggregates (paper §3.0.3). Executing them independently repeats the most
expensive work — the filtered table scan — once per component. This
module merges a refresh into a handful of shared scans:

1. **Grouping.** Queries are grouped by scan signature — (table,
   normalized filter predicate) — via
   :func:`repro.engine.planner.scan_signature`.
2. **Fusion.** Within a group, queries with identical GROUP BY keys
   (:func:`repro.engine.planner.fusion_signature`) are fused into one
   merged query that computes every requested aggregate in a single
   pass; the combined result is sliced back column-wise.
3. **Shared scan.** When a group still holds several fused executions
   and carries a filter, the filter runs once (``SELECT * … WHERE …``),
   the qualifying rows are materialized as a temporary engine-resident
   relation in base-table order, and each fused query runs over it with
   its WHERE stripped. Filtering commutes with grouping, ordering, and
   limiting, so a deterministic engine returns byte-identical results.

4. **Multi-plan evaluation** (``multiplan=True``). An *unfiltered*
   group — the initial dashboard render — has no filter to share, so
   steps 1–3 still pay one base scan per fusion class. The evaluator
   in :mod:`repro.engine.multiplan` computes every class's group-by in
   a single pass: one combined query GROUPs BY the union of all key
   expressions with decomposed aggregates, then one small merge query
   per class derives its exact result from the combined rows. Off by
   default, like every optimizer tier here.

5. **Partial-aggregate rollup.** For sharded execution
   (:mod:`repro.sharding`), :func:`build_rollup` decomposes a fused
   aggregate query into a *partial* query (AVG becomes SUM + COUNT;
   COUNT/SUM/MIN/MAX pass through) that runs once per table shard, and
   a *merge* query that re-aggregates the per-shard partial rows into
   the final result — COUNT and SUM partials merge with SUM, MIN/MAX
   with themselves, AVG as ``SUM(sums) * 1.0 / SUM(counts)``.

Correctness needs no engine cooperation beyond determinism: every
member query is still *executed by the engine itself*, merely over a
pre-filtered, order-preserving relation. The property tests in
``tests/test_engine_batch.py`` assert byte-identical results against
sequential execution across all engines.

Caveat: engines whose physical plan depends on the SELECT list (e.g. a
covering secondary index) could order fused output differently. The
benchmark's default setup applies no indexing (§6.2.2); batch execution
follows it.

Thread-safety contract (established in the concurrency layer, relied on
here): a bare :class:`BatchExecutor` guards its own shared mutable
state — the cumulative stats and the key memo are mutex-protected, so
an executor shared across threads corrupts neither (the *engine* it
drives must still tolerate the calls; see
:attr:`~repro.engine.interface.Engine.thread_safe`). The concurrent
subclass (:class:`~repro.concurrency.executor.ScanGroupExecutor`)
retains its own coarser locking around grouping and stats merges —
redundant with this class's guard, and harmless — serializes every
call into a non-thread-safe engine through that engine's per-instance
:func:`~repro.concurrency.policy.execution_slot`, and relies on three
invariants this module maintains:

- **Unique temp names** (:func:`unique_temp_name`): two executions of
  the same (table, filter) group overlapping on one engine can never
  replace or drop each other's shared-scan relation.
- **Epoch-guarded cache stores**: the scan-group cache epoch is
  captured *before* any engine work and passed to ``store`` — a result
  computed against data that mutated mid-group is silently dropped
  instead of cached (the "lost invalidation" race).
- **Leaf-granular engine calls**: no lock is held across an engine
  call, so a call that blocks on another thread's single-flight leader
  cannot deadlock against that leader's engine slot.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass

from repro.engine.interface import Engine, QueryResult, ResultSet
from repro.engine.planner import (
    AGG_PREFIX,
    KEY_PREFIX,
    AggregatePlan,
    ScanSignature,
    fusion_signature,
    plan_query,
    scan_signature,
)
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    replace_query,
)
from repro.sql.formatter import format_query
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace

#: Shared no-op context manager for the telemetry-off path: ``with
#: _NULL as span:`` binds ``span = None`` and allocates nothing, so
#: per-group instrumentation stays free when tracing is disabled.
#: ``nullcontext`` is stateless, hence safely re-entered concurrently.
_NULL = nullcontext()

#: Name prefix of the temporary relations materialized for shared scans.
#: The result cache recognizes it to exempt them from invalidation.
TEMP_PREFIX = "__batchscan_"


def temp_table_name(table: str, predicate_key: str) -> str:
    """Deterministic temp-relation name stem for one (table, filter) group."""
    digest = hashlib.sha1(predicate_key.encode("utf-8")).hexdigest()[:10]
    return f"{TEMP_PREFIX}{table}_{digest}"


#: Uniquifies each shared-scan materialization's relation name, so two
#: executions of the same (table, filter) group overlapping on one
#: engine — concurrent refreshes sharing a store — can never replace or
#: drop each other's temp mid-group. Names keep the TEMP_PREFIX, which
#: is all the cache-exemption and scan-counting logic keys on.
_TEMP_SEQUENCE = itertools.count()


def unique_temp_name(table: str, predicate_key: str) -> str:
    """A never-repeating temp-relation name for one (table, filter) scan.

    Appends a process-wide sequence number to the deterministic stem so
    overlapping executions on one engine cannot collide; the name keeps
    :data:`TEMP_PREFIX`, which is all the cache-exemption and
    scan-counting logic keys on.
    """
    return f"{temp_table_name(table, predicate_key)}_{next(_TEMP_SEQUENCE)}"


@dataclass(frozen=True)
class BatchItem:
    """One query of a batch, tagged with its request position."""

    index: int
    query: Query
    sql: str  # canonical text: stable cache key and log string


@dataclass
class ScanGroup:
    """Queries sharing one (table, normalized predicate) scan.

    ``signature is None`` marks queries the optimizer cannot share
    (joins); they execute directly, exactly as in sequential mode.
    """

    signature: ScanSignature | None
    members: list[BatchItem]


@dataclass
class BatchStats:
    """What one (or more) batch executions did, for the benchmarks.

    ``base_scans`` counts engine executions *issued* against a base
    table — the quantity sequential execution pays once per query
    (``sequential_scans``). Executions against the temporary filtered
    relations are not base scans: they read only the rows the shared
    scan already qualified. When the fallback engine is itself a cache,
    some issued executions may be answered without touching data, so
    this is an upper bound; benchmarks count true scans at the engine
    boundary with :class:`repro.engine.instrument.CountingEngine`.
    """

    queries: int = 0
    groups: int = 0
    base_scans: int = 0
    shared_scans: int = 0  # temp materializations performed
    fused_queries: int = 0  # queries answered by a merged execution
    cache_hits: int = 0  # queries served from a scan-group cache
    fallbacks: int = 0  # queries executed unbatched (joins etc.)
    sharded_groups: int = 0  # groups executed as per-shard tasks
    shard_scans: int = 0  # per-shard base-range materializations
    multiplan_groups: int = 0  # groups answered by one combined pass
    multiplan_plans: int = 0  # fusion classes folded into combined passes
    proc_shard_scans: int = 0  # shard scans executed in worker processes

    @property
    def sequential_scans(self) -> int:
        """Base scans sequential execution would have performed."""
        return self.queries

    def merge(self, other: "BatchStats") -> None:
        self.queries += other.queries
        self.groups += other.groups
        self.base_scans += other.base_scans
        self.shared_scans += other.shared_scans
        self.fused_queries += other.fused_queries
        self.cache_hits += other.cache_hits
        self.fallbacks += other.fallbacks
        self.sharded_groups += other.sharded_groups
        self.shard_scans += other.shard_scans
        self.multiplan_groups += other.multiplan_groups
        self.multiplan_plans += other.multiplan_plans
        self.proc_shard_scans += other.proc_shard_scans


@dataclass
class BatchResult:
    """Positionally aligned results of one batch execution."""

    results: list[QueryResult]
    stats: BatchStats


def _query_keys(query: Query) -> tuple[str, ScanSignature | None]:
    """(canonical SQL, scan signature) for one query."""
    return format_query(query), scan_signature(query)


def group_queries(
    queries: list[Query],
    key_fn=_query_keys,
) -> list[ScanGroup]:
    """Partition a batch by scan signature, preserving encounter order."""
    groups: dict[tuple[str, str], ScanGroup] = {}
    ordered: list[ScanGroup] = []
    for index, query in enumerate(queries):
        sql, signature = key_fn(query)
        item = BatchItem(index, query, sql)
        if signature is None:
            ordered.append(ScanGroup(None, [item]))
            continue
        key = (signature.table, signature.predicate_key)
        group = groups.get(key)
        if group is None:
            group = ScanGroup(signature, [])
            groups[key] = group
            ordered.append(group)
        group.members.append(item)
    return ordered


class _FusionClass:
    """Queries fusable into one merged execution (same scan, same keys).

    The merged SELECT list is the deduplicated concatenation of the
    members' lists, keyed by (expression, output name) so each member's
    result — values *and* column names — can be sliced back unchanged.
    """

    def __init__(self, template: Query) -> None:
        self._template = template
        self.members: list[BatchItem] = []
        self._items: list[SelectItem] = []
        self._positions: dict[tuple[object, str], int] = {}
        self.slices: list[list[int]] = []

    def add(self, item: BatchItem) -> None:
        columns: list[int] = []
        for i, sel in enumerate(item.query.select):
            key = (sel.expr, sel.output_name(i))
            position = self._positions.get(key)
            if position is None:
                position = len(self._items)
                self._positions[key] = position
                self._items.append(sel)
            columns.append(position)
        self.members.append(item)
        self.slices.append(columns)

    def merged_query(self) -> Query:
        if len(self.members) == 1:
            return self.members[0].query
        return replace_query(self._template, select=tuple(self._items))

    def slice_result(self, position: int, merged: ResultSet) -> ResultSet:
        """Project one member's columns back out of the merged result."""
        member = self.members[position]
        if len(self.members) == 1:
            return merged
        columns = self.slices[position]
        rows = [tuple(row[j] for j in columns) for row in merged.rows]
        return ResultSet(member.query.output_names(), rows)


def fuse_members(members: list[BatchItem]) -> list[_FusionClass]:
    """Partition one scan group's members into fusion classes."""
    classes: dict[tuple, _FusionClass] = {}
    ordered: list[_FusionClass] = []
    for item in members:
        signature = fusion_signature(item.query)
        if signature is None:
            solo = _FusionClass(item.query)
            solo.add(item)
            ordered.append(solo)
            continue
        cls = classes.get(signature)
        if cls is None:
            cls = _FusionClass(item.query)
            classes[signature] = cls
            ordered.append(cls)
        cls.add(item)
    return ordered


class BatchExecutor:
    """Executes query batches through the shared-scan optimizer.

    Results are byte-identical to calling ``engine.execute_timed`` per
    query. With a :class:`~repro.engine.cache.ScanGroupCache`, whole
    scan groups are cached and served without touching the engine until
    the underlying table mutates.
    """

    def __init__(
        self,
        engine: Engine,
        policy=None,
        *,
        group_cache=None,
        fallback_engine: Engine | None = None,
        multiplan: bool | None = None,
    ) -> None:
        from repro.errors import ConfigError
        from repro.execution import ExecutionPolicy, resolve_policy

        policy = resolve_policy(
            policy,
            api="BatchExecutor",
            default=ExecutionPolicy(),
            multiplan=multiplan,
        )
        if not policy.batch:
            raise ConfigError(
                "BatchExecutor is the shared-scan path; a batch=False "
                "policy belongs on Engine.execute_batch, which routes "
                "it to per-query execution"
            )
        self.engine = engine
        self.group_cache = group_cache
        #: The executor's execution policy. Plain ``BatchExecutor``
        #: consumes only ``multiplan``; the concurrency subclass
        #: (:class:`~repro.concurrency.executor.ScanGroupExecutor`)
        #: schedules ``workers`` and ``shards`` too.
        self.policy = policy
        #: Evaluate an unfiltered group's fusion classes in one
        #: combined pass (:mod:`repro.engine.multiplan`) instead of one
        #: execution per class. ``False`` (the default) is the exact
        #: pre-multiplan path — the evaluator is not even reached.
        self.multiplan = policy.multiplan
        #: The caller-facing engine: unbatchable queries (joins,
        #: aliased FROM) execute here, and results are stamped with its
        #: name. A caching wrapper passes itself so fallbacks keep the
        #: per-query cache while shared scans bypass it.
        self.fallback_engine = fallback_engine or engine
        #: Cumulative stats across every ``run`` on this executor.
        self.stats = BatchStats()
        # Guards the two pieces of cross-run shared state below — the
        # cumulative stats and the key memo — so a bare executor shared
        # across threads never merges lossily or corrupts the memo's
        # OrderedDict reordering. Leaf-granular: never held across an
        # engine call.
        # repro: allow(RA106) — data-structure guard, not parallelism;
        # the executor owns no threads (pools live in concurrency/).
        self._state_lock = threading.Lock()
        # Dashboard refreshes rebuild equal ASTs every time; Query is a
        # frozen dataclass, so a bounded per-executor memo lets the
        # fully-cached refresh path skip re-formatting/re-normalizing
        # each query. Instance-scoped so retention ends with the engine.
        self._key_memo: "OrderedDict[Query, tuple[str, ScanSignature | None]]" = (
            OrderedDict()
        )

    def run(self, queries: list[Query]) -> BatchResult:
        """Execute one batch; results align positionally with input."""
        stats = BatchStats(queries=len(queries))
        results: list[QueryResult | None] = [None] * len(queries)
        groups = group_queries(list(queries), key_fn=self._memoized_keys)
        stats.groups = len(groups)
        tracer = _trace.ACTIVE
        for group in groups:
            if group.signature is None:
                if tracer is not None:
                    for item in group.members:
                        # Tag before delegating: a cache hit inside the
                        # fallback engine overrides with "cache".
                        tracer.tag_query(item.sql, "fallback")
                        with tracer.span("fallback", sql=item.sql):
                            results[item.index] = (
                                self.fallback_engine.execute_timed(item.query)
                            )
                        stats.fallbacks += 1
                        stats.base_scans += 1
                else:
                    for item in group.members:
                        results[item.index] = (
                            self.fallback_engine.execute_timed(item.query)
                        )
                        stats.fallbacks += 1
                        stats.base_scans += 1
            elif tracer is not None:
                with tracer.span(
                    "scan_group",
                    table=group.signature.table,
                    group_key=group.signature.predicate_key,
                    members=len(group.members),
                ):
                    self._run_group(group, results, stats)
            else:
                self._run_group(group, results, stats)
        if any(r is None for r in results):
            # Positional alignment is the API contract; a hole here
            # must fail loudly, never compact silently.
            raise ExecutionError("batch execution left a query unanswered")
        with self._state_lock:
            self.stats.merge(stats)
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.record_batch(stats)
        return BatchResult(list(results), stats)

    # -- internals ----------------------------------------------------------

    def _memoized_keys(self, query: Query) -> tuple[str, ScanSignature | None]:
        try:
            with self._state_lock:
                keys = self._key_memo.get(query)
        except TypeError:  # unhashable literal somewhere in the AST
            return _query_keys(query)
        if keys is None:
            keys = _query_keys(query)  # computed outside the lock
            with self._state_lock:
                self._key_memo[query] = keys
                if len(self._key_memo) > 1024:
                    self._key_memo.popitem(last=False)
        return keys

    def _run_group(
        self,
        group: ScanGroup,
        results: list[QueryResult | None],
        stats: BatchStats,
        multiplan: bool | None = None,
    ) -> None:
        signature = group.signature
        assert signature is not None
        pending = group.members
        epoch = None
        if self.group_cache is not None:
            # Captured before any engine work: if the table is
            # invalidated while this group computes, the store below is
            # dropped instead of caching results of vanished data.
            epoch = self.group_cache.epoch(signature.table)
            pending = self._serve_cached(signature, pending, results, stats)
            if not pending:
                return
        classes = fuse_members(pending)
        stats.fused_queries += len(pending) - len(classes)
        predicate = pending[0].query.where
        produced: dict[str, ResultSet] = {}
        shared = False
        combine = self.multiplan if multiplan is None else multiplan
        if combine and predicate is None and len(classes) > 1:
            # Multi-plan tier: an unfiltered group has no filter to
            # share, so its eligible fusion classes evaluate together
            # in one combined pass; ineligible shapes come back and
            # run per class below.
            from repro.engine.multiplan import run_multiplan

            classes = run_multiplan(
                self, signature, classes, results, stats, produced
            )
        if predicate is not None and len(classes) > 1:
            shared = self._run_shared(
                signature, classes, results, stats, produced
            )
        if not shared:
            tracer = _trace.ACTIVE
            for cls in classes:
                # A solo class runs the caller's SQL verbatim, so it may
                # go through the caller-facing engine (and its caches);
                # merged queries' SQL is internal and must bypass them.
                target = (
                    self.fallback_engine
                    if len(cls.members) == 1
                    else self.engine
                )
                if tracer is not None:
                    # Tag before delegating: a per-query cache hit
                    # inside the fallback engine overrides with "cache".
                    for item in cls.members:
                        tracer.tag_query(item.sql, "shared_scan")
                timed = target.execute_timed(cls.merged_query())
                stats.base_scans += 1
                self._distribute(cls, timed.result, timed.duration_ms, 0.0,
                                 results, produced, tier=None)
        if self.group_cache is not None and produced:
            self.group_cache.store(
                signature.table, signature.predicate_key, produced,
                epoch=epoch,
            )

    def _run_shared(
        self,
        signature: ScanSignature,
        classes: list[_FusionClass],
        results: list[QueryResult | None],
        stats: BatchStats,
        produced: dict[str, ResultSet],
    ) -> bool:
        """One base scan, then every fused query over the filtered rows.

        Returns ``False`` (nothing executed) when the engine can
        neither materialize the filtered relation natively nor expose
        the base schema for the generic fetch-and-load fallback.
        """
        predicate = classes[0].members[0].query.where
        name = unique_temp_name(signature.table, signature.predicate_key)
        tracer = _trace.ACTIVE
        member_count = sum(len(c.members) for c in classes)
        cm = (
            _NULL
            if tracer is None
            else tracer.span(
                "shared_scan",
                table=signature.table,
                classes=len(classes),
                members=member_count,
            )
        )
        with cm as span:
            start = time.perf_counter()
            if not self.engine.materialize_filtered(
                name, signature.table, predicate
            ):
                schema = self.engine.table_schema(signature.table)
                if schema is None:
                    return False
                fetch = Query(
                    select=(SelectItem(Star()),),
                    from_table=TableRef(signature.table),
                    where=predicate,
                )
                fetched = self.engine.execute(fetch)
                self.engine.load_table(_materialize(name, schema, fetched))
            scan_ms = (time.perf_counter() - start) * 1000.0
            if span is not None:
                span.attrs["scan_ms"] = round(scan_ms, 3)
            stats.base_scans += 1
            stats.shared_scans += 1
            fetch_share = scan_ms / member_count
            try:
                for cls in classes:
                    # Alias the temp back to the base name so queries with
                    # table-qualified columns (``events.q``) keep resolving.
                    rewritten = replace_query(
                        cls.merged_query(),
                        from_table=TableRef(name, alias=signature.table),
                        where=None,
                    )
                    timed = self.engine.execute_timed(rewritten)
                    self._distribute(
                        cls, timed.result, timed.duration_ms, fetch_share,
                        results, produced,
                    )
            finally:
                try:
                    self.engine.unload_table(name)
                except ExecutionError:
                    pass  # engine keeps the temp; next load replaces it
        return True

    def _distribute(
        self,
        cls: _FusionClass,
        merged: ResultSet,
        duration_ms: float,
        extra_share_ms: float,
        results: list[QueryResult | None],
        produced: dict[str, ResultSet],
        tier: str | None = "shared_scan",
    ) -> None:
        """Slice a class execution back into per-query timed results.

        ``tier`` is the explain attribution stamped on every member
        (the single choke point each optimizer path routes through);
        ``None`` means the caller already tagged — used where tagging
        must happen *before* delegating to a possibly-caching engine.
        """
        tracer = _trace.ACTIVE
        share = duration_ms / len(cls.members)
        for position, item in enumerate(cls.members):
            if tracer is not None and tier is not None:
                tracer.tag_query(item.sql, tier)
            sliced = cls.slice_result(position, merged)
            # The group cache copies on store, and rows are immutable
            # tuples, so handing the same ResultSet to both is safe.
            produced[item.sql] = sliced
            results[item.index] = QueryResult(
                result=sliced,
                duration_ms=share + extra_share_ms,
                engine=self.fallback_engine.name,
                sql=item.sql,
            )

    def _serve_cached(
        self,
        signature: ScanSignature,
        members: list[BatchItem],
        results: list[QueryResult | None],
        stats: BatchStats,
    ) -> list[BatchItem]:
        """Answer members already in the scan-group cache; return the rest."""
        tracer = _trace.ACTIVE
        cm = (
            _NULL
            if tracer is None
            else tracer.span(
                "cache_lookup", table=signature.table, members=len(members)
            )
        )
        with cm as span:
            cached = self.group_cache.lookup(
                signature.table, signature.predicate_key
            )
            pending: list[BatchItem] = []
            for item in members:
                hit = cached.get(item.sql)
                if hit is None:
                    pending.append(item)
                    continue
                if tracer is not None:
                    tracer.tag_query(item.sql, "cache")
                start = time.perf_counter()
                copy = ResultSet(hit.columns, hit.rows)
                duration_ms = (time.perf_counter() - start) * 1000.0
                results[item.index] = QueryResult(
                    result=copy,
                    duration_ms=duration_ms,
                    engine=self.fallback_engine.name,
                    sql=item.sql,
                )
                stats.cache_hits += 1
            if span is not None:
                span.attrs["hits"] = len(members) - len(pending)
        return pending


def _materialize(name: str, schema: Schema, fetched: ResultSet) -> Table:
    """Build the temp relation from a ``SELECT *`` result, typed like base."""
    positions = {column: i for i, column in enumerate(fetched.columns)}
    columns = {
        column: [row[positions[column]] for row in fetched.rows]
        for column in schema.names
    }
    return Table(name, schema, columns)


# ---------------------------------------------------------------------------
# Partial-aggregate rollup (sharded execution support)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateRollup:
    """Two-level execution plan for one fused aggregate query.

    The *partial* query runs once per table shard over that shard's
    filtered rows and computes decomposed aggregates (AVG as SUM +
    COUNT). The per-shard partial rows are then concatenated — in shard
    order, which preserves first-occurrence order — into a temporary
    relation, and the *merge* query re-aggregates them on the engine
    itself, so group ordering, value types, and output naming are the
    engine's own, exactly as in unsharded execution.

    Exactness boundary: merging re-associates floating-point addition
    (per-shard sums are rounded before the final SUM), so SUM/AVG over
    FLOAT columns are byte-identical only when every partial sum is
    exactly representable — always true for INTEGER/BOOLEAN columns and
    for dyadic-rational floats; for arbitrary floats, results agree to
    IEEE-754 rounding (equal after
    :func:`~repro.engine.interface.normalize_value`). COUNT/MIN/MAX are
    exact for every type.
    """

    #: SELECT list of the per-shard query: group keys first, then the
    #: decomposed aggregate pieces, every item aliased.
    partial_select: tuple[SelectItem, ...]
    #: GROUP BY of the per-shard query (the original key expressions).
    partial_group_by: tuple[Expression, ...]
    #: SELECT list of the final query over the partial relation: the
    #: original post-aggregation expressions with each aggregate call
    #: replaced by its merge expression, aliased to the original output
    #: names.
    merge_select: tuple[SelectItem, ...]
    #: GROUP BY of the final query (the partial key columns).
    merge_group_by: tuple[Expression, ...]
    #: Column names of the partial relation, in partial_select order.
    partial_names: tuple[str, ...]
    #: Output column names of the final result.
    output_names: tuple[str, ...]

    def partial_query(self, relation: str, base_table: str) -> Query:
        """The per-shard query over one shard's filtered relation.

        The shard temp is aliased back to the base table name so
        table-qualified column references keep resolving, exactly like
        the shared-scan rewrite.
        """
        return Query(
            select=self.partial_select,
            from_table=TableRef(relation, alias=base_table),
            group_by=self.partial_group_by,
        )

    def merge_query(self, relation: str) -> Query:
        """The final re-aggregation over the concatenated partials."""
        return Query(
            select=self.merge_select,
            from_table=TableRef(relation),
            group_by=self.merge_group_by,
        )

    def partial_table(self, name: str, partials: list[ResultSet]) -> Table:
        """The merge input: every shard's partial rows, in shard order."""
        return concat_partials(name, self.partial_names, partials)

    def empty_result(self) -> ResultSet:
        """The result of a grouped rollup with zero qualifying rows."""
        return ResultSet(list(self.output_names), [])


def eligible_plan(query: Query) -> "AggregatePlan | None":
    """The query's aggregate plan when its aggregates can decompose.

    The single eligibility gate for both partial-aggregate consumers —
    the sharded rollup (:func:`build_rollup`) and the multi-plan
    evaluator (:mod:`repro.engine.multiplan`) — so the two paths can
    never disagree about what is decomposable. ``None`` marks queries
    whose aggregates cannot be re-aggregated from partials:
    non-aggregates (projections concatenate instead), HAVING / ORDER
    BY / LIMIT / DISTINCT (they change row sets or ordering in ways
    that do not commute with re-aggregation), DISTINCT aggregates
    (distinct sets overlap across partitions), joins, and select items
    whose output name is engine-dependent (the merge queries rebuild
    names from aliases, which must match what the engine would have
    produced — the same naming restriction
    :func:`~repro.engine.planner.fusion_signature` applies).
    """
    if (
        query.joins
        or query.having is not None
        or query.order_by
        or query.limit is not None
        or query.distinct
        or not query.is_aggregate
    ):
        return None
    for item in query.select:
        if isinstance(item.expr, Star):
            return None
        if item.alias is None and not isinstance(item.expr, Column):
            return None  # engine-dependent output name; cannot rebuild
    try:
        plan = plan_query(query)
    except ExecutionError:
        return None
    assert isinstance(plan, AggregatePlan)
    for call in plan.agg_calls:
        if call.distinct:
            return None
    return plan


def concat_partials(
    name: str, column_names: tuple[str, ...], partials: list[ResultSet]
) -> Table:
    """The merge input: every partial's rows concatenated, in order.

    One partial for a combined single pass; one per shard — in shard
    order, which preserves first-occurrence order — for sharded
    execution. Shared by :class:`AggregateRollup` and
    :class:`~repro.engine.multiplan.MultiPlan` so the relation both
    merge paths aggregate over is built by the same code.
    """
    columns: dict[str, list[object]] = {n: [] for n in column_names}
    for partial in partials:
        for i, column in enumerate(partial.columns):
            columns[column].extend(row[i] for row in partial.rows)
    return Table.from_columns(name, columns)


def decompose_aggregate(
    call: FuncCall, stem: str
) -> tuple[list[SelectItem], list[str], Expression] | None:
    """The mergeable decomposition of one aggregate call.

    Returns ``(pieces, names, merge_expr)``: the partial SELECT items
    computing the call's decomposed pieces (columns named from
    ``stem``), their names, and the expression that re-aggregates the
    pieces back into the call's value. This is the single home of the
    merge algebra — the sharded rollup (:func:`build_rollup`) and the
    multi-plan evaluator (:mod:`repro.engine.multiplan`) both build on
    it, so the two paths cannot drift apart. ``None`` for functions
    outside the aggregate vocabulary.
    """
    if call.name == "AVG":
        sum_name = f"{stem}_sum"
        count_name = f"{stem}_count"
        # ``* 1.0`` forces float division on engines with integer
        # ``/`` (SQLite); SQL NULL propagation makes the all-empty
        # case come out NULL, matching AVG over zero rows.
        merged: Expression = BinaryOp(
            "/",
            BinaryOp(
                "*",
                FuncCall("SUM", (Column(sum_name),)),
                Literal(1.0),
            ),
            FuncCall("SUM", (Column(count_name),)),
        )
        return (
            [
                SelectItem(FuncCall("SUM", call.args), sum_name),
                SelectItem(FuncCall("COUNT", call.args), count_name),
            ],
            [sum_name, count_name],
            merged,
        )
    if call.name in ("COUNT", "SUM"):
        # COUNT partials are never NULL, so SUM-of-counts is the total
        # count; SUM partials skip NULLs partition-locally and SUM of
        # the partials skips all-NULL partitions — both match the
        # one-pass semantics exactly.
        return [SelectItem(call, stem)], [stem], FuncCall(
            "SUM", (Column(stem),)
        )
    if call.name in ("MIN", "MAX"):
        return [SelectItem(call, stem)], [stem], FuncCall(
            call.name, (Column(stem),)
        )
    return None


def build_rollup(query: Query) -> AggregateRollup | None:
    """The partial/merge decomposition of ``query``, or ``None``.

    ``None`` marks queries that cannot roll up from per-shard partials
    — everything :func:`eligible_plan` rejects, plus colliding partial
    column names.
    """
    plan = eligible_plan(query)
    if plan is None:
        return None

    # Partial key columns carry the *original* output name where the
    # key is selected — the SQLite wrapper restores temporal/boolean
    # types by looking output columns up in the relation's schema, so a
    # date-typed group key must keep its name through the partial
    # relation. Unselected keys get positional internal names.
    key_names: list[str] = []
    for i, key in enumerate(plan.key_exprs):
        name = f"__key{i}"
        for position, item in enumerate(query.select):
            if item.expr == key:
                name = item.output_name(position)
                break
        key_names.append(name)

    partial_select: list[SelectItem] = [
        SelectItem(key, key_names[i])
        for i, key in enumerate(plan.key_exprs)
    ]
    partial_names = list(key_names)
    substitutions: dict[str, Expression] = {
        f"{KEY_PREFIX}{i}": Column(key_names[i])
        for i in range(len(plan.key_exprs))
    }
    for j, call in enumerate(plan.agg_calls):
        decomposed = decompose_aggregate(call, f"__part{j}")
        if decomposed is None:  # pragma: no cover - exhaustive vocabulary
            return None
        pieces, names, merged = decomposed
        partial_select += pieces
        partial_names += names
        substitutions[f"{AGG_PREFIX}{j}"] = merged
    if len(set(partial_names)) != len(partial_names):
        return None  # colliding output names; cannot build the relation

    merge_select = tuple(
        SelectItem(
            _substitute(expr, substitutions),
            query.select[position].output_name(position),
        )
        for position, expr in enumerate(plan.item_exprs)
    )
    return AggregateRollup(
        partial_select=tuple(partial_select),
        partial_group_by=tuple(plan.key_exprs),
        merge_select=merge_select,
        merge_group_by=tuple(Column(n) for n in key_names),
        partial_names=tuple(partial_names),
        output_names=tuple(query.output_names()),
    )


def _substitute(expr: Expression, mapping: dict[str, Expression]) -> Expression:
    """Replace placeholder columns by name throughout an expression."""
    if isinstance(expr, Column):
        return mapping.get(expr.name, expr)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _substitute(expr.left, mapping),
            _substitute(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _substitute(expr.operand, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(_substitute(a, mapping) for a in expr.args),
            expr.distinct,
        )
    if isinstance(expr, InList):
        return InList(
            _substitute(expr.expr, mapping),
            tuple(_substitute(v, mapping) for v in expr.values),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            _substitute(expr.expr, mapping),
            _substitute(expr.low, mapping),
            _substitute(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(_substitute(expr.expr, mapping), expr.pattern, expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_substitute(expr.expr, mapping), expr.negated)
    return expr  # Literals and Star pass through.


__all__ = [
    "AggregateRollup",
    "BatchExecutor",
    "BatchItem",
    "BatchResult",
    "BatchStats",
    "ScanGroup",
    "TEMP_PREFIX",
    "build_rollup",
    "concat_partials",
    "decompose_aggregate",
    "eligible_plan",
    "fuse_members",
    "group_queries",
    "temp_table_name",
    "unique_temp_name",
]
