"""Expression evaluation: row-at-a-time and vectorized.

Two evaluators over the same AST:

- :func:`evaluate_row` — interprets an expression against one row dict,
  with SQL-style NULL propagation and Kleene three-valued AND/OR. Used
  by the Volcano-style row store.
- :func:`evaluate_mask` / :func:`evaluate_values` — numpy batch
  evaluation against whole columns. Used by the vectorized and
  materializing column engines.

Aggregate *accumulators* for the row engine also live here so all three
pure-Python engines agree on aggregate semantics (e.g. ``SUM`` of zero
rows is NULL, ``COUNT`` of zero rows is 0, NULLs are skipped).
"""

from __future__ import annotations

import datetime as _dt
import fnmatch
import math
import re

import numpy as np

from repro.errors import ExecutionError, TypeMismatchError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)

# ---------------------------------------------------------------------------
# Row-at-a-time evaluation
# ---------------------------------------------------------------------------


def evaluate_row(expr: Expression, row: dict[str, object]) -> object:
    """Evaluate ``expr`` against one row; NULL-propagating."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        if expr.name not in row:
            raise ExecutionError(f"unknown column {expr.name!r} in row")
        return row[expr.name]
    if isinstance(expr, Star):
        raise ExecutionError("'*' is only valid inside COUNT()")
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name} evaluated outside GROUP BY context"
            )
        return _scalar_function(expr, row)
    if isinstance(expr, BinaryOp):
        return _binary_row(expr, row)
    if isinstance(expr, UnaryOp):
        return _unary_row(expr, row)
    if isinstance(expr, InList):
        return _in_row(expr, row)
    if isinstance(expr, Between):
        value = evaluate_row(expr.expr, row)
        low = evaluate_row(expr.low, row)
        high = evaluate_row(expr.high, row)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expr.negated else result
    if isinstance(expr, Like):
        value = evaluate_row(expr.expr, row)
        if value is None:
            return None
        result = like_match(str(value), expr.pattern)
        return (not result) if expr.negated else result
    if isinstance(expr, IsNull):
        value = evaluate_row(expr.expr, row)
        result = value is None
        return (not result) if expr.negated else result
    raise ExecutionError(f"cannot evaluate node {type(expr).__name__}")


def _binary_row(expr: BinaryOp, row: dict[str, object]) -> object:
    if expr.is_boolean:
        left = evaluate_row(expr.left, row)
        right = evaluate_row(expr.right, row)
        return _kleene(expr.op, left, right)
    left = evaluate_row(expr.left, row)
    right = evaluate_row(expr.right, row)
    if left is None or right is None:
        return None
    if expr.is_comparison:
        return _compare(expr.op, left, right)
    if expr.is_arithmetic:
        return _arithmetic(expr.op, left, right)
    raise ExecutionError(f"unknown binary operator {expr.op!r}")


def _unary_row(expr: UnaryOp, row: dict[str, object]) -> object:
    value = evaluate_row(expr.operand, row)
    if expr.op == "NOT":
        if value is None:
            return None
        return not bool(value)
    if expr.op == "-":
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeMismatchError(f"cannot negate {value!r}")
        return -value
    raise ExecutionError(f"unknown unary operator {expr.op!r}")


def _in_row(expr: InList, row: dict[str, object]) -> object:
    value = evaluate_row(expr.expr, row)
    if value is None:
        return None
    members = [evaluate_row(v, row) for v in expr.values]
    found = any(
        m is not None and _compare("=", value, m) for m in members
    )
    if found:
        return not expr.negated
    if any(m is None for m in members):
        # SQL: x IN (..., NULL) is NULL when no member matches.
        return None
    return expr.negated


def _kleene(op: str, left: object, right: object) -> object:
    """Three-valued AND/OR over {True, False, None}."""
    lb = None if left is None else bool(left)
    rb = None if right is None else bool(right)
    if op == "AND":
        if lb is False or rb is False:
            return False
        if lb is None or rb is None:
            return None
        return True
    if lb is True or rb is True:
        return True
    if lb is None or rb is None:
        return None
    return False


def _compare(op: str, left: object, right: object) -> bool:
    left, right = _align_types(left, right)
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise TypeMismatchError(
            f"cannot compare {left!r} {op} {right!r}"
        ) from exc
    raise ExecutionError(f"unknown comparison {op!r}")


def _align_types(left: object, right: object) -> tuple[object, object]:
    """Best-effort cross-type alignment (int vs float, date vs string)."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, _dt.datetime) and isinstance(right, _dt.date) and not isinstance(right, _dt.datetime):
        return left, _dt.datetime(right.year, right.month, right.day)
    if isinstance(right, _dt.datetime) and isinstance(left, _dt.date) and not isinstance(left, _dt.datetime):
        return _dt.datetime(left.year, left.month, left.day), right
    if isinstance(left, _dt.date) and isinstance(right, str):
        return left, _parse_temporal(right, like=left)
    if isinstance(right, _dt.date) and isinstance(left, str):
        return _parse_temporal(left, like=right), right
    return left, right


def _parse_temporal(text: str, like: object) -> object:
    if isinstance(like, _dt.datetime):
        return _dt.datetime.fromisoformat(text)
    return _dt.date.fromisoformat(text)


def _arithmetic(op: str, left: object, right: object) -> object:
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise TypeMismatchError(
            f"arithmetic {op} requires numbers, got {left!r}, {right!r}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL engines differ; we use NULL like SQLite.
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _scalar_function(expr: FuncCall, row: dict[str, object]) -> object:
    args = [evaluate_row(a, row) for a in expr.args]
    return apply_scalar_function(expr.name, args)


def apply_scalar_function(name: str, args: list[object]) -> object:
    """Shared scalar-function semantics for all engines.

    NULL in, NULL out (except COALESCE).
    """
    if name == "COALESCE":
        for arg in args:
            if arg is not None:
                return arg
        return None
    if any(a is None for a in args):
        return None
    if name in ("YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "DOW"):
        value = args[0]
        if isinstance(value, str):
            value = (
                _dt.datetime.fromisoformat(value)
                if len(value) > 10
                else _dt.date.fromisoformat(value)
            )
        if not isinstance(value, _dt.date):
            raise TypeMismatchError(f"{name}() requires a temporal value")
        if name == "YEAR":
            return value.year
        if name == "MONTH":
            return value.month
        if name == "DAY":
            return value.day
        if name == "DOW":
            return value.weekday()
        if not isinstance(value, _dt.datetime):
            return 0
        return value.hour if name == "HOUR" else value.minute
    if name == "BIN":
        if len(args) != 2:
            raise ExecutionError("BIN(value, width) takes two arguments")
        value, width = args
        if not isinstance(value, (int, float)) or not isinstance(width, (int, float)):
            raise TypeMismatchError("BIN() requires numeric arguments")
        if width <= 0:
            raise ExecutionError("BIN() width must be positive")
        return math.floor(value / width) * width
    if name == "ABS":
        return abs(args[0])  # type: ignore[arg-type]
    if name == "ROUND":
        digits = int(args[1]) if len(args) > 1 else 0
        return round(float(args[0]), digits)  # type: ignore[arg-type]
    if name == "LOWER":
        return str(args[0]).lower()
    if name == "UPPER":
        return str(args[0]).upper()
    if name == "LENGTH":
        return len(str(args[0]))
    raise ExecutionError(f"unknown scalar function {name!r}")


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""
    regex = _like_regex(pattern)
    return regex.match(value) is not None


def _like_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts) + r"\Z", re.DOTALL)


# ---------------------------------------------------------------------------
# Vectorized evaluation
# ---------------------------------------------------------------------------


class VectorContext:
    """Column arrays available to the vectorized evaluator."""

    def __init__(self, arrays: dict[str, np.ndarray], num_rows: int) -> None:
        self.arrays = arrays
        self.num_rows = num_rows

    def column(self, name: str) -> np.ndarray:
        if name not in self.arrays:
            raise ExecutionError(f"unknown column {name!r}")
        return self.arrays[name]


def evaluate_values(expr: Expression, ctx: VectorContext) -> np.ndarray:
    """Evaluate ``expr`` to a value array (float64 or object dtype)."""
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return np.full(ctx.num_rows, float(value), dtype=np.float64)
        return np.full(ctx.num_rows, value, dtype=object)
    if isinstance(expr, Column):
        return ctx.column(expr.name)
    if isinstance(expr, FuncCall):
        return _vector_scalar_function(expr, ctx)
    if isinstance(expr, BinaryOp) and expr.is_arithmetic:
        left = _as_float(evaluate_values(expr.left, ctx))
        right = _as_float(evaluate_values(expr.right, ctx))
        with np.errstate(divide="ignore", invalid="ignore"):
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                out = left / right
                out[np.isinf(out)] = np.nan
                return out
            if expr.op == "%":
                out = np.mod(left, right)
                out[right == 0] = np.nan
                return out
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return -_as_float(evaluate_values(expr.operand, ctx))
    # Predicates used as values (rare): materialize the mask as floats.
    if isinstance(expr, (BinaryOp, UnaryOp, InList, Between, Like, IsNull)):
        return evaluate_mask(expr, ctx).astype(np.float64)
    raise ExecutionError(
        f"cannot vectorize value expression {type(expr).__name__}"
    )


def evaluate_mask(expr: Expression, ctx: VectorContext) -> np.ndarray:
    """Evaluate a predicate to a boolean mask (NULL comparisons -> False)."""
    if isinstance(expr, BinaryOp) and expr.is_boolean:
        left = evaluate_mask(expr.left, ctx)
        right = evaluate_mask(expr.right, ctx)
        return (left & right) if expr.op == "AND" else (left | right)
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        # NOT over a mask loses NULL-ness; acceptable for filtering since
        # rows whose predicate is NULL are dropped either way only when the
        # inner evaluator reported False for them. We additionally mask out
        # NULL inputs below for atomic predicates.
        return ~evaluate_mask(expr.operand, ctx)
    if isinstance(expr, BinaryOp) and expr.is_comparison:
        return _vector_compare(expr, ctx)
    if isinstance(expr, InList):
        values = evaluate_values(expr.expr, ctx)
        members = [
            v.value if isinstance(v, Literal) else None for v in expr.values
        ]
        if any(
            not isinstance(v, Literal) for v in expr.values
        ):
            raise ExecutionError("vectorized IN requires literal members")
        mask = _vector_isin(values, [m for m in members if m is not None])
        mask &= _notnull(values)
        return ~mask & _notnull(values) if expr.negated else mask
    if isinstance(expr, Between):
        values = evaluate_values(expr.expr, ctx)
        low = _single_literal(expr.low)
        high = _single_literal(expr.high)
        mask = _vector_order(values, ">=", low) & _vector_order(values, "<=", high)
        return (~mask & _notnull(values)) if expr.negated else mask
    if isinstance(expr, Like):
        values = evaluate_values(expr.expr, ctx)
        regex = _like_regex(expr.pattern)
        mask = np.array(
            [
                v is not None and not _is_nan(v) and regex.match(str(v)) is not None
                for v in values
            ],
            dtype=bool,
        )
        return (~mask & _notnull(values)) if expr.negated else mask
    if isinstance(expr, IsNull):
        values = evaluate_values(expr.expr, ctx)
        nulls = ~_notnull(values)
        return ~nulls if expr.negated else nulls
    if isinstance(expr, Literal):
        return np.full(ctx.num_rows, bool(expr.value), dtype=bool)
    if isinstance(expr, Column):
        values = ctx.column(expr.name)
        return np.array([bool(v) and not _is_nan(v) for v in values], dtype=bool)
    raise ExecutionError(f"cannot vectorize predicate {type(expr).__name__}")


def _vector_compare(expr: BinaryOp, ctx: VectorContext) -> np.ndarray:
    left = evaluate_values(expr.left, ctx)
    right = evaluate_values(expr.right, ctx)
    if left.dtype == np.float64 and right.dtype == np.float64:
        with np.errstate(invalid="ignore"):
            op = expr.op
            if op == "=":
                mask = left == right
            elif op == "!=":
                mask = left != right
            elif op == "<":
                mask = left < right
            elif op == "<=":
                mask = left <= right
            elif op == ">":
                mask = left > right
            else:
                mask = left >= right
        # NaN != NaN is True under numpy; SQL says NULL != x is NULL -> drop.
        mask &= ~np.isnan(left) & ~np.isnan(right)
        return mask
    # Object arrays: equality vectorizes through numpy's elementwise
    # ==; ordering falls back to a null-tolerant loop.
    if expr.op in ("=", "!="):
        with np.errstate(invalid="ignore"):
            equal = left == right
        if not isinstance(equal, np.ndarray):
            equal = np.full(len(left), bool(equal), dtype=bool)
        equal = equal.astype(bool)
        valid = _notnull(left) & _notnull(right)
        if expr.op == "=":
            return equal & valid
        return ~equal & valid
    result = np.zeros(len(left), dtype=bool)
    for i, (lv, rv) in enumerate(zip(left, right)):
        if lv is None or rv is None or _is_nan(lv) or _is_nan(rv):
            continue
        try:
            result[i] = _compare(expr.op, lv, rv)
        except TypeMismatchError:
            result[i] = False
    return result


def _vector_scalar_function(expr: FuncCall, ctx: VectorContext) -> np.ndarray:
    if expr.is_aggregate:
        raise ExecutionError(
            f"aggregate {expr.name} evaluated outside aggregation"
        )
    if expr.name == "BIN":
        values = _as_float(evaluate_values(expr.args[0], ctx))
        width = _single_literal(expr.args[1])
        if not isinstance(width, (int, float)) or width <= 0:
            raise ExecutionError("BIN() width must be a positive number")
        return np.floor(values / float(width)) * float(width)
    if expr.name == "ABS":
        return np.abs(_as_float(evaluate_values(expr.args[0], ctx)))
    if expr.name == "ROUND":
        values = _as_float(evaluate_values(expr.args[0], ctx))
        digits = (
            int(_single_literal(expr.args[1])) if len(expr.args) > 1 else 0
        )
        return np.round(values, digits)
    # Temporal and string functions fall back to elementwise application.
    arg_arrays = [evaluate_values(a, ctx) for a in expr.args]
    out = np.empty(ctx.num_rows, dtype=object)
    for i in range(ctx.num_rows):
        args = [_none_if_nan(arr[i]) for arr in arg_arrays]
        out[i] = apply_scalar_function(expr.name, args)
    if all(isinstance(v, (int, float)) or v is None for v in out):
        return np.array(
            [np.nan if v is None else float(v) for v in out], dtype=np.float64
        )
    return out


def _vector_isin(values: np.ndarray, members: list[object]) -> np.ndarray:
    if values.dtype == np.float64:
        numeric = [float(m) for m in members if isinstance(m, (int, float))]
        return np.isin(values, numeric)
    mask = np.zeros(len(values), dtype=bool)
    with np.errstate(invalid="ignore"):
        for member in members:
            hit = values == member
            if isinstance(hit, np.ndarray):
                mask |= hit.astype(bool)
    return mask


def _vector_order(values: np.ndarray, op: str, bound: object) -> np.ndarray:
    if values.dtype == np.float64 and isinstance(bound, (int, float)):
        with np.errstate(invalid="ignore"):
            mask = values >= bound if op == ">=" else values <= bound
        return mask & ~np.isnan(values)
    result = np.zeros(len(values), dtype=bool)
    for i, v in enumerate(values):
        if v is None or _is_nan(v):
            continue
        try:
            result[i] = _compare(op, v, bound)
        except TypeMismatchError:
            result[i] = False
    return result


def _notnull(values: np.ndarray) -> np.ndarray:
    if values.dtype == np.float64:
        return ~np.isnan(values)
    return np.array([v is not None for v in values], dtype=bool)


def _as_float(values: np.ndarray) -> np.ndarray:
    if values.dtype == np.float64:
        return values
    return np.array(
        [np.nan if (v is None or _is_nan(v)) else float(v) for v in values],
        dtype=np.float64,
    )


def _single_literal(expr: Expression) -> object:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)):
            return -value
    raise ExecutionError("expected a literal value")


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and math.isnan(value)


def _none_if_nan(value: object) -> object:
    return None if (value is None or _is_nan(value)) else value


# ---------------------------------------------------------------------------
# Aggregate accumulators (row engine)
# ---------------------------------------------------------------------------


class Accumulator:
    """Streaming aggregate state; NULL inputs are skipped per SQL."""

    def __init__(self, distinct: bool = False) -> None:
        self._distinct = distinct
        self._seen: set[object] | None = set() if distinct else None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        self._add(value)

    def _add(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """COUNT(expr): number of non-null inputs."""

    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._count = 0

    def _add(self, value: object) -> None:
        self._count += 1

    def result(self) -> int:
        return self._count


class CountStarAccumulator(Accumulator):
    """COUNT(*): number of rows, including all-null rows."""

    def __init__(self) -> None:
        super().__init__(False)
        self._count = 0

    def add(self, value: object) -> None:  # value ignored
        self._count += 1

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._sum: float | int | None = None

    def _add(self, value: object) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            if isinstance(value, bool):
                value = int(value)
            else:
                raise TypeMismatchError(f"SUM over non-numeric value {value!r}")
        self._sum = value if self._sum is None else self._sum + value

    def result(self) -> object:
        return self._sum


class AvgAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._sum = 0.0
        self._count = 0

    def _add(self, value: object) -> None:
        if not isinstance(value, (int, float)):
            raise TypeMismatchError(f"AVG over non-numeric value {value!r}")
        self._sum += float(value)
        self._count += 1

    def result(self) -> object:
        if self._count == 0:
            return None
        return self._sum / self._count


class MinAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._min: object = None

    def _add(self, value: object) -> None:
        if self._min is None or value < self._min:  # type: ignore[operator]
            self._min = value

    def result(self) -> object:
        return self._min


class MaxAccumulator(Accumulator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._max: object = None

    def _add(self, value: object) -> None:
        if self._max is None or value > self._max:  # type: ignore[operator]
            self._max = value

    def result(self) -> object:
        return self._max


def make_accumulator(call: FuncCall) -> Accumulator:
    """Instantiate the accumulator for an aggregate call."""
    if call.name == "COUNT":
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            return CountStarAccumulator()
        return CountAccumulator(call.distinct)
    if call.name == "SUM":
        return SumAccumulator(call.distinct)
    if call.name == "AVG":
        return AvgAccumulator(call.distinct)
    if call.name == "MIN":
        return MinAccumulator(call.distinct)
    if call.name == "MAX":
        return MaxAccumulator(call.distinct)
    raise ExecutionError(f"unknown aggregate function {call.name!r}")
