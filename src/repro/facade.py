"""`repro.connect()` — the one-import session facade.

The library grew layer by layer, and so did its import surface: running
a dashboard refresh the optimized way meant importing from five
subpackages (``repro.engine`` for the engine and cache,
``repro.dashboard`` for specs and state, ``repro.logs`` for replay,
``repro.execution`` for the policy, ``repro.workload`` for data).
:func:`connect` folds that into one entry point::

    import repro

    session = repro.connect("sqlite", policy=repro.ExecutionPolicy.concurrent(4))
    session.load(repro.generate_dataset("customer_service", 20_000, seed=0))
    results = session.refresh("customer_service")
    print(session.stats)

A :class:`Session` owns one engine, one
:class:`~repro.execution.ExecutionPolicy`, and the tables loaded into
it. Every operation — refreshes, replays, raw queries — executes under
the session's policy unless a per-call ``policy=`` overrides it, so
callers configure execution once instead of threading knobs through
every call.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.engine.interface import Engine, QueryResult
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.execution import ExecutionPolicy, coerce_policy

#: Shared no-op scope for sessions without a telemetry bundle.
_NULL = nullcontext()


@dataclass(frozen=True)
class SessionStats:
    """A session's cumulative activity, cheap to print."""

    engine: str
    policy: str  # ExecutionPolicy.describe()
    queries: int
    refreshes: int
    replays: int
    #: Fraction of queries answered from cache; ``None`` when the
    #: session's engine is not a :class:`~repro.engine.cache.CachedEngine`.
    cache_hit_rate: float | None = None


class Session:
    """One engine + one execution policy + the tables loaded into it.

    Construct through :func:`connect`. The session is a thin facade:
    every method delegates to the same public machinery importable
    piecewise (:meth:`~repro.dashboard.state.DashboardState.refresh`,
    :func:`~repro.logs.replay.replay_log`,
    :meth:`~repro.engine.interface.Engine.execute_batch`), so graduating
    from the facade to the full API never changes behavior.
    """

    def __init__(
        self,
        engine: Engine | str = "sqlite",
        policy: ExecutionPolicy | str | None = None,
        *,
        cache: bool = False,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if isinstance(engine, str):
            engine = create_engine(engine)
        if cache:
            from repro.engine.cache import CachedEngine

            engine = CachedEngine(engine)
        self.engine = engine
        self.policy = (
            ExecutionPolicy() if policy is None else coerce_policy(policy)
        )
        #: Optional :class:`~repro.telemetry.Telemetry` bundle, scoped
        #: around every executing session operation; ``None`` (the
        #: default) keeps the stack on its untraced path.
        self.telemetry = telemetry
        self._tables: dict[str, Table] = {}
        #: Live dashboard states keyed by spec name, so interactions
        #: applied through the facade persist across refresh calls.
        self._states: dict[str, object] = {}
        self._queries = 0
        self._refreshes = 0
        self._replays = 0

    # -- data ---------------------------------------------------------------

    def load(self, table: Table) -> "Session":
        """Load (or replace) a table in the engine; chainable.

        Replacing a table drops any cached dashboard states built over
        it — their widget domains and range steps derive from the
        table's data at construction, so they rebuild against the new
        table on next access.
        """
        self.engine.load_table(table)
        self._tables[table.name] = table
        self._states = {
            name: state
            for name, state in self._states.items()
            if state.spec.database.table != table.name
        }
        return self

    @property
    def tables(self) -> tuple[str, ...]:
        """Names of the tables loaded through this session."""
        return tuple(sorted(self._tables))

    # -- dashboards ---------------------------------------------------------

    def dashboard(self, dashboard):
        """A live :class:`~repro.dashboard.state.DashboardState`.

        ``dashboard`` is a spec, a library name
        (:func:`~repro.dashboard.library.load_dashboard`), or an
        existing state (returned as-is). Building a state requires the
        spec's base table to have been :meth:`load`-ed first.
        """
        from repro.dashboard.library import load_dashboard
        from repro.dashboard.spec import DashboardSpec
        from repro.dashboard.state import DashboardState

        if isinstance(dashboard, DashboardState):
            return dashboard
        if isinstance(dashboard, str):
            dashboard = load_dashboard(dashboard)
        if not isinstance(dashboard, DashboardSpec):
            raise ConfigError(
                f"dashboard must be a DashboardState, DashboardSpec, or "
                f"library name, got {dashboard!r}"
            )
        state = self._states.get(dashboard.name)
        if state is not None and state.spec == dashboard:
            return state
        table = self._tables.get(dashboard.database.table)
        if table is None:
            raise ConfigError(
                f"dashboard {dashboard.name!r} reads table "
                f"{dashboard.database.table!r}, which this session has "
                f"not loaded; call session.load(table) first"
            )
        state = DashboardState(dashboard, table)
        self._states[dashboard.name] = state
        return state

    def refresh(self, dashboard, viz_ids=None, policy=None):
        """Refresh a dashboard under the session's policy.

        ``dashboard`` as in :meth:`dashboard`; returns timed results
        keyed by visualization id, exactly like
        :meth:`DashboardState.refresh`. A per-call ``policy`` overrides
        the session's.
        """
        state = self.dashboard(dashboard)
        with self._scope():
            results = state.refresh(
                self.engine, viz_ids=viz_ids, policy=self._effective(policy)
            )
        self._refreshes += 1
        self._queries += len(results)
        return results

    def apply_and_refresh(self, dashboard, interaction, policy=None):
        """Apply an interaction to a state and refresh its fan-out."""
        state = self.dashboard(dashboard)
        with self._scope():
            results = state.apply_and_refresh(
                interaction, self.engine, policy=self._effective(policy)
            )
        self._refreshes += 1
        self._queries += len(results)
        return results

    def explain(self, dashboard, viz_ids=None, policy=None):
        """Refresh a dashboard and report how each query was answered.

        Runs the refresh under a private
        :class:`~repro.telemetry.Telemetry` bundle (shadowing the
        session's own, if any) and returns an
        :class:`~repro.telemetry.ExplainReport`: every visualization's
        query attributed to exactly one answering tier (``cache`` /
        ``multiplan`` / ``sharded`` / ``shared_scan`` / ``fallback``)
        with its cost, plus the refresh's span tree. The refresh is a
        real one — results land in caches, counters advance — so
        ``print(session.explain("customer_service"))`` answers "why
        was that refresh slow" for the very next refresh.
        """
        from repro.telemetry import Telemetry, build_explain

        state = self.dashboard(dashboard)
        telemetry = Telemetry()
        with telemetry.install():
            results = state.refresh(
                self.engine, viz_ids=viz_ids, policy=self._effective(policy)
            )
        self._refreshes += 1
        self._queries += len(results)
        return build_explain(results, telemetry.tracer)

    # -- logs ---------------------------------------------------------------

    def replay(self, log, check_cardinality=True, strict=False, policy=None):
        """Replay an exported log on the session's engine.

        The engine must hold the dataset the log was recorded against
        (load it with :meth:`load`). Returns the
        :class:`~repro.logs.replay.ReplayReport`.
        """
        from repro.logs.replay import replay_log

        with self._scope():
            report = replay_log(
                log,
                self.engine,
                check_cardinality=check_cardinality,
                strict=strict,
                policy=self._effective(policy),
            )
        self._replays += 1
        self._queries += report.query_count
        return report

    # -- queries ------------------------------------------------------------

    def execute(self, query) -> QueryResult:
        """Execute one query (SQL text or parsed AST), timed."""
        from repro.sql.ast import Query
        from repro.sql.parser import parse_query

        if not isinstance(query, Query):
            query = parse_query(query)
        with self._scope():
            timed = self.engine.execute_timed(query)
        self._queries += 1
        return timed

    def execute_batch(self, queries, policy=None) -> list[QueryResult]:
        """Execute a query list under the session's policy."""
        from repro.sql.ast import Query
        from repro.sql.parser import parse_query

        parsed = [
            q if isinstance(q, Query) else parse_query(q) for q in queries
        ]
        with self._scope():
            results = self.engine.execute_batch(
                parsed, self._effective(policy)
            )
        self._queries += len(results)
        return results

    # -- introspection / lifecycle ------------------------------------------

    @property
    def stats(self) -> SessionStats:
        """Cumulative counts plus the engine/policy identity."""
        hit_rate = None
        if hasattr(self.engine, "hit_rate"):
            hit_rate = self.engine.hit_rate
        return SessionStats(
            engine=self.engine.name,
            policy=self.policy.describe(),
            queries=self._queries,
            refreshes=self._refreshes,
            replays=self._replays,
            cache_hit_rate=hit_rate,
        )

    def _effective(self, policy) -> ExecutionPolicy:
        return self.policy if policy is None else coerce_policy(policy)

    def _scope(self):
        """The session's telemetry scope (a shared no-op without one)."""
        if self.telemetry is None:
            return _NULL
        return self.telemetry.install()

    def close(self) -> None:
        """Close the engine and release its pooled resources.

        The session owns its engine, and the engine may have exported
        tables into the shared :class:`~repro.concurrency.procpool.ProcessShardPool`
        as ``/dev/shm`` segments and snapshot files. Those exports are
        released here — the worker pool itself is a process-lifetime
        singleton and stays warm for other sessions — so a
        ``with repro.connect(...)`` block leaves no shared-memory
        segments behind.
        """
        from repro.concurrency.procpool import release_engine_exports

        release_engine_exports(self.engine)
        self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(engine={self.engine.name!r}, "
            f"policy={self.policy!r}, tables={list(self.tables)!r})"
        )


def connect(
    engine: Engine | str = "sqlite",
    policy: ExecutionPolicy | str | None = None,
    *,
    cache: bool = False,
    telemetry: "Telemetry | None" = None,
) -> Session:
    """Open a :class:`Session` on an engine under one execution policy.

    ``engine`` is a registry name (:func:`~repro.engine.registry.create_engine`)
    or an already-constructed engine; ``policy`` an
    :class:`~repro.execution.ExecutionPolicy` or preset name (default:
    shared-scan batch execution on one worker); ``cache=True`` wraps
    the engine in a :class:`~repro.engine.cache.CachedEngine`;
    ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle) scopes
    tracing + metrics around every session operation. The session owns
    the engine — closing the session closes it.
    """
    return Session(engine, policy, cache=cache, telemetry=telemetry)


__all__ = ["Session", "SessionStats", "connect"]
