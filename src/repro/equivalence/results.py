"""Result equivalence, subsumption, and overlap (Oracle heuristic θ).

The paper (§4.1.2) defines:

- **goal completion**: the union of goal result sets is covered by the
  union of observed result sets — ``∪ R_g ⊆ ∪ R_i``;
- **progress**: the size of the overlap ``|R_g ∩ R(s)|`` — the more goal
  cells a candidate interaction's results cover, the better.

Coverage is tested at *cell* granularity: every (column, value) pair of
the goal result must appear in the observed results. Column matching is
name-based after alias normalization; when a goal column name is absent
from the observed results, we fall back to matching any observed column
whose value set covers the goal column's (dashboards routinely alias
the same aggregate differently).
"""

from __future__ import annotations

from repro.engine.interface import Engine, ResultSet, normalize_value
from repro.sql.ast import Query
from repro.sql.formatter import format_query


class ResultCache:
    """Memoizes query execution on a reference engine.

    The Oracle planner evaluates many candidate interactions per step;
    caching keeps goal-completion testing from dominating simulation
    time (queries are keyed by their formatted SQL).
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._cache: dict[str, ResultSet] = {}
        self.hits = 0
        self.misses = 0

    def execute(self, query: Query) -> ResultSet:
        key = format_query(query)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = self._engine.execute(query)
        self._cache[key] = result
        return result

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0


def _column_values(result: ResultSet, index: int) -> set[object]:
    return {normalize_value(row[index]) for row in result.rows}


def _observed_cells(results: list[ResultSet]) -> dict[str, set[object]]:
    """Merge observed results into {column name -> set of values}."""
    merged: dict[str, set[object]] = {}
    for result in results:
        for i, name in enumerate(result.columns):
            merged.setdefault(name.lower(), set()).update(
                _column_values(result, i)
            )
    return merged


def covers(goal: ResultSet, observed: list[ResultSet]) -> bool:
    """True when every goal cell appears in the observed results."""
    return coverage_fraction(goal, observed) >= 1.0


def coverage_fraction(goal: ResultSet, observed: list[ResultSet]) -> float:
    """Fraction of the goal's cells covered by the observed results.

    Returns 1.0 for an empty goal result (nothing to cover). This is
    the quantity the Oracle maximizes as θ.
    """
    if not goal.rows:
        return 1.0
    merged = _observed_cells(observed)
    total = 0
    covered = 0
    for index, name in enumerate(goal.columns):
        goal_values = _column_values(goal, index)
        total += len(goal_values)
        observed_values = merged.get(name.lower())
        if observed_values is None:
            observed_values = _best_value_match(goal_values, merged)
        if observed_values:
            covered += len(goal_values & observed_values)
    if total == 0:
        return 1.0
    return covered / total


def _best_value_match(
    goal_values: set[object], merged: dict[str, set[object]]
) -> set[object]:
    """Fallback column matching by value overlap (alias-insensitive)."""
    best: set[object] = set()
    best_score = 0
    for values in merged.values():
        score = len(goal_values & values)
        if score > best_score:
            best_score = score
            best = values
    return best


def result_subsumes(goal: ResultSet, candidate: ResultSet) -> bool:
    """True when the candidate result covers the whole goal result."""
    return covers(goal, [candidate])


def result_equal(a: ResultSet, b: ResultSet) -> bool:
    """Mutual coverage: the two results contain the same cells."""
    return covers(a, [b]) and covers(b, [a])


def goal_set_covered(
    goal_queries: list[Query],
    observed_queries: list[Query],
    cache: ResultCache,
) -> bool:
    """The paper's completion test: ``∪ R_g ⊆ ∪ R_i``."""
    observed_results = [cache.execute(q) for q in observed_queries]
    for goal in goal_queries:
        if not covers(cache.execute(goal), observed_results):
            return False
    return True


def goal_set_overlap(
    goal_queries: list[Query],
    observed_queries: list[Query],
    cache: ResultCache,
) -> float:
    """Mean coverage fraction across the goal set (progress measure)."""
    if not goal_queries:
        return 1.0
    observed_results = [cache.execute(q) for q in observed_queries]
    fractions = [
        coverage_fraction(cache.execute(goal), observed_results)
        for goal in goal_queries
    ]
    return sum(fractions) / len(fractions)
