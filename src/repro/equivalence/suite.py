"""The three-tier equivalence decision procedure (paper §4.1.2).

:class:`EquivalenceSuite` tries, in order of cost:

1. syntactic equivalence (normalized text / >95% similarity),
2. semantic equivalence (SPES-style canonical forms),
3. result equivalence (execute and test coverage).

It records which method decided, which the evaluation section uses to
report how often each tier fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.engine.interface import Engine
from repro.equivalence.results import (
    ResultCache,
    coverage_fraction,
    covers,
    goal_set_covered,
    goal_set_overlap,
)
from repro.equivalence.semantic import (
    semantically_equivalent,
    semantically_subsumes,
)
from repro.equivalence.syntactic import (
    SIMILARITY_THRESHOLD,
    syntactically_equivalent,
)
from repro.sql.ast import Query


class EquivalenceMethod(Enum):
    """Which tier decided an equivalence question."""

    SYNTACTIC = "syntactic"
    SEMANTIC = "semantic"
    RESULT = "result"
    NONE = "none"


@dataclass(frozen=True)
class EquivalenceVerdict:
    """Outcome of one equivalence test."""

    equivalent: bool
    method: EquivalenceMethod

    def __bool__(self) -> bool:
        return self.equivalent


@dataclass
class SuiteStatistics:
    """Counts how often each tier fired (for evaluation reporting)."""

    syntactic: int = 0
    semantic: int = 0
    result: int = 0
    misses: int = 0

    def record(self, method: EquivalenceMethod) -> None:
        if method is EquivalenceMethod.SYNTACTIC:
            self.syntactic += 1
        elif method is EquivalenceMethod.SEMANTIC:
            self.semantic += 1
        elif method is EquivalenceMethod.RESULT:
            self.result += 1
        else:
            self.misses += 1


class EquivalenceSuite:
    """Three-tier equivalence/subsumption checker bound to one engine.

    Parameters
    ----------
    engine:
        Reference engine used by the result-equivalence tier. Result
        executions are cached across calls.
    similarity_threshold:
        String-similarity cutoff for the syntactic tier (paper: 0.95).
    enable_syntactic / enable_semantic / enable_result:
        Tier toggles, used by the equivalence ablation benchmark.
    """

    def __init__(
        self,
        engine: Engine,
        similarity_threshold: float = SIMILARITY_THRESHOLD,
        enable_syntactic: bool = True,
        enable_semantic: bool = True,
        enable_result: bool = True,
    ) -> None:
        self.cache = ResultCache(engine)
        self.similarity_threshold = similarity_threshold
        self.enable_syntactic = enable_syntactic
        self.enable_semantic = enable_semantic
        self.enable_result = enable_result
        self.statistics = SuiteStatistics()

    # -- pairwise equivalence --------------------------------------------------

    def equivalent(self, goal: Query, candidate: Query) -> EquivalenceVerdict:
        """Test whether ``candidate`` is equivalent to ``goal``."""
        if self.enable_syntactic and syntactically_equivalent(
            goal, candidate, self.similarity_threshold
        ):
            verdict = EquivalenceVerdict(True, EquivalenceMethod.SYNTACTIC)
            self.statistics.record(verdict.method)
            return verdict
        if self.enable_semantic and semantically_equivalent(goal, candidate):
            verdict = EquivalenceVerdict(True, EquivalenceMethod.SEMANTIC)
            self.statistics.record(verdict.method)
            return verdict
        if self.enable_result:
            goal_result = self.cache.execute(goal)
            candidate_result = self.cache.execute(candidate)
            if covers(goal_result, [candidate_result]) and covers(
                candidate_result, [goal_result]
            ):
                verdict = EquivalenceVerdict(True, EquivalenceMethod.RESULT)
                self.statistics.record(verdict.method)
                return verdict
        verdict = EquivalenceVerdict(False, EquivalenceMethod.NONE)
        self.statistics.record(verdict.method)
        return verdict

    def subsumes(self, goal: Query, candidate: Query) -> EquivalenceVerdict:
        """Test whether ``candidate``'s results cover ``goal``'s."""
        if self.enable_semantic and semantically_subsumes(goal, candidate):
            verdict = EquivalenceVerdict(True, EquivalenceMethod.SEMANTIC)
            self.statistics.record(verdict.method)
            return verdict
        if self.enable_result:
            goal_result = self.cache.execute(goal)
            candidate_result = self.cache.execute(candidate)
            if covers(goal_result, [candidate_result]):
                verdict = EquivalenceVerdict(True, EquivalenceMethod.RESULT)
                self.statistics.record(verdict.method)
                return verdict
        verdict = EquivalenceVerdict(False, EquivalenceMethod.NONE)
        self.statistics.record(verdict.method)
        return verdict

    # -- goal-set operations ---------------------------------------------------

    def goal_completed(
        self, goal_queries: list[Query], observed_queries: list[Query]
    ) -> bool:
        """The paper's completion test over whole goal sets."""
        if not self.enable_result:
            # Without the result tier, fall back to pairwise equivalence:
            # every goal query must match some observed query.
            return all(
                any(
                    self.equivalent(goal, seen).equivalent
                    for seen in observed_queries
                )
                for goal in goal_queries
            )
        return goal_set_covered(goal_queries, observed_queries, self.cache)

    def progress(
        self, goal_queries: list[Query], observed_queries: list[Query]
    ) -> float:
        """Mean goal coverage in [0, 1] — the Oracle's heuristic θ."""
        return goal_set_overlap(goal_queries, observed_queries, self.cache)

    def query_overlap(self, goal: Query, candidate: Query) -> float:
        """Coverage fraction of one goal by one candidate query."""
        goal_result = self.cache.execute(goal)
        candidate_result = self.cache.execute(candidate)
        return coverage_fraction(goal_result, [candidate_result])
