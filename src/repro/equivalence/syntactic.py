"""Syntactic equivalence: normalized-text match and string similarity.

The paper's first, cheapest tier: "a query is syntactically equivalent
to the goal query if the query's text covers at least the same columns
and rows as the goal query's text", with a >95% string-similarity rule
(after whitespace normalization) used as a fallback extension to SPES.
"""

from __future__ import annotations

import difflib

from repro.sql.ast import Query
from repro.sql.formatter import format_query, normalize_sql

#: The paper's similarity threshold for inferring equivalence.
SIMILARITY_THRESHOLD = 0.95


def normalized_text(query: Query | str) -> str:
    """Canonical normalized text of a query or raw SQL string."""
    if isinstance(query, Query):
        query = format_query(query)
    return normalize_sql(query)


def similarity(a: Query | str, b: Query | str) -> float:
    """Similarity ratio in [0, 1] between two normalized query texts."""
    return difflib.SequenceMatcher(
        None, normalized_text(a), normalized_text(b)
    ).ratio()


def syntactically_equivalent(
    a: Query | str,
    b: Query | str,
    threshold: float = SIMILARITY_THRESHOLD,
) -> bool:
    """True when normalized texts match exactly or are >= ``threshold`` similar.

    The similarity rule is guarded by a cheap structural check: two
    queries whose aggregate functions or join shapes differ are never
    "similar enough". Without the guard, long shared clauses (joins
    especially) push e.g. ``SUM(x)`` vs ``COUNT(*)`` variants of one
    query past the 95% threshold — a false positive that would complete
    goals early.
    """
    text_a = normalized_text(a)
    text_b = normalized_text(b)
    if text_a == text_b:
        return True
    signature_a = _structure_signature(a)
    signature_b = _structure_signature(b)
    if (
        signature_a is not None
        and signature_b is not None
        and signature_a != signature_b
    ):
        return False
    return (
        difflib.SequenceMatcher(None, text_a, text_b).ratio() >= threshold
    )


def _structure_signature(query: Query | str) -> tuple[object, ...] | None:
    """Coarse structure used to gate the similarity rule.

    Returns ``None`` for unparseable raw SQL (the gate then always
    passes, preserving the paper's plain string-match behaviour there).
    """
    if isinstance(query, str):
        from repro.errors import SqlError
        from repro.sql.parser import parse_query

        try:
            query = parse_query(query)
        except SqlError:
            return None
    aggregates = sorted(
        node.name
        for item in query.select
        for node in _function_calls(item.expr)
        if node.is_aggregate
    )
    joins = tuple(j.kind for j in query.joins)
    return (tuple(aggregates), joins)


def _function_calls(expr):
    from repro.sql.ast import FuncCall, walk

    return [node for node in walk(expr) if isinstance(node, FuncCall)]


def is_textual_prefix(a: Query | str, b: Query | str) -> bool:
    """True when ``a``'s normalized text is a prefix of ``b``'s.

    The paper uses textual prefixing as one of its subsumption signals
    (e.g. the same query with an extra WHERE conjunct appended).
    """
    return normalized_text(b).startswith(normalized_text(a))
