"""Query equivalence and result-coverage testing (paper §4.1.2).

The paper decides goal completion with three methods, tried in order:

1. **Syntactic equivalence** — normalized query text matches (or string
   similarity exceeds 95%);
2. **Semantic equivalence** — a SPES-style solver proves the queries
   return the same results on any input relation (we implement a
   canonicalizer covering the analytic subset: see
   :mod:`repro.equivalence.semantic`);
3. **Result equivalence** — executing the queries and testing whether
   the goal's result set is covered by the observed result sets.

Progress toward a goal is measured as result-set *overlap* — the Oracle
planner's heuristic θ (Algorithm 1).
"""

from repro.equivalence.results import ResultCache, coverage_fraction, covers
from repro.equivalence.semantic import canonical_form, semantically_equivalent
from repro.equivalence.suite import (
    EquivalenceMethod,
    EquivalenceSuite,
    EquivalenceVerdict,
)
from repro.equivalence.syntactic import similarity, syntactically_equivalent

__all__ = [
    "EquivalenceMethod",
    "EquivalenceSuite",
    "EquivalenceVerdict",
    "ResultCache",
    "canonical_form",
    "coverage_fraction",
    "covers",
    "semantically_equivalent",
    "similarity",
    "syntactically_equivalent",
]
