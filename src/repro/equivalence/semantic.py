"""Semantic equivalence: a SPES-style canonicalizing solver.

SPES (Zhou et al. 2020) proves query equivalence by compiling SQL into
denotational semantics. We reproduce its effect on the analytic subset
the dashboards emit by reducing each query to a *canonical form*; two
queries are semantically equivalent when their canonical forms are
identical. The reduction is sound (equal forms imply equal results for
every input relation) but, like SPES, incomplete — a ``False`` answer
means "not proven", and the caller falls through to string matching and
result equivalence, exactly as the paper describes.

Canonical form components:

- table name (alias-insensitive),
- the set of canonicalized SELECT expressions (aliases ignored,
  qualifiers stripped since all queries are single-table),
- the normalized predicate (see :mod:`repro.equivalence.normalize`),
- the set of canonicalized GROUP BY expressions,
- the normalized HAVING predicate,
- DISTINCT flag and LIMIT (ORDER BY is ignored under set semantics,
  except that a LIMIT makes order significant, in which case ORDER BY
  keys are included).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.equivalence.normalize import (
    canonical_text,
    normalize_predicate,
    normalize_select_expression,
)
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Query,
    Star,
    UnaryOp,
)


@dataclass(frozen=True)
class CanonicalForm:
    """Hashable canonical representation of a query's denotation."""

    table: str
    joins: tuple[str, ...]
    select: frozenset[str]
    predicate: str
    group_by: frozenset[str]
    having: str
    distinct: bool
    limit: int | None
    order: tuple[str, ...]


def canonical_form(query: Query) -> CanonicalForm:
    """Reduce a query to its canonical form."""
    stripped = _strip_qualifiers_query(query)
    select = frozenset(
        canonical_text(normalize_select_expression(item.expr))
        for item in stripped.select
    )
    predicate = canonical_text(normalize_predicate(stripped.where))
    group_by = frozenset(
        canonical_text(normalize_select_expression(e))
        for e in stripped.group_by
    )
    having = canonical_text(normalize_predicate(stripped.having))
    if stripped.limit is not None:
        order = tuple(
            ("-" if o.descending else "+")
            + canonical_text(normalize_select_expression(o.expr))
            for o in stripped.order_by
        )
    else:
        order = ()
    joins = tuple(
        f"{j.kind} {j.table.name.lower()} "
        f"{j.left_key.name.lower()}={j.right_key.name.lower()}"
        for j in query.joins
    )
    return CanonicalForm(
        table=stripped.from_table.name.lower(),
        joins=joins,
        select=select,
        predicate=predicate,
        group_by=group_by,
        having=having,
        distinct=stripped.distinct,
        limit=stripped.limit,
        order=order,
    )


def semantically_equivalent(a: Query, b: Query) -> bool:
    """True when both queries provably return identical results.

    Incomplete by design: ``False`` means "not proven equivalent".
    """
    return canonical_form(a) == canonical_form(b)


def semantically_subsumes(goal: Query, candidate: Query) -> bool:
    """True when ``candidate`` provably returns a superset of ``goal``.

    The check is deliberately conservative; it recognizes the common
    dashboard pattern where a query gains extra SELECT columns and/or a
    *weaker* predicate:

    - same table and grouping,
    - candidate SELECT ⊇ goal SELECT,
    - candidate predicate's conjunct set ⊆ goal predicate's conjunct set
      (fewer conjuncts filter less, so the candidate keeps more rows),
    - same HAVING, no DISTINCT/LIMIT complications.
    """
    form_goal = canonical_form(goal)
    form_candidate = canonical_form(candidate)
    if form_goal.table != form_candidate.table:
        return False
    if form_goal.joins != form_candidate.joins:
        return False  # join shape differences are never proven subsumed
    if form_goal.group_by != form_candidate.group_by:
        return False
    if form_goal.having != form_candidate.having:
        return False
    if form_goal.limit is not None or form_candidate.limit is not None:
        return False
    if not form_goal.select <= form_candidate.select:
        return False
    goal_conjuncts = set(_conjunct_texts(goal))
    candidate_conjuncts = set(_conjunct_texts(candidate))
    return candidate_conjuncts <= goal_conjuncts


def _conjunct_texts(query: Query) -> list[str]:
    from repro.sql.ast import conjuncts

    normalized = normalize_predicate(
        _strip_qualifiers(query.where) if query.where is not None else None
    )
    return [canonical_text(c) for c in conjuncts(normalized)]


# ---------------------------------------------------------------------------
# Qualifier stripping (single-table queries: "t.col" == "col")
# ---------------------------------------------------------------------------


def _strip_qualifiers_query(query: Query) -> Query:
    from dataclasses import replace
    from repro.sql.ast import OrderItem, SelectItem

    return replace(
        query,
        select=tuple(
            SelectItem(_strip_qualifiers(i.expr), i.alias)
            for i in query.select
        ),
        where=(
            _strip_qualifiers(query.where)
            if query.where is not None
            else None
        ),
        group_by=tuple(_strip_qualifiers(e) for e in query.group_by),
        having=(
            _strip_qualifiers(query.having)
            if query.having is not None
            else None
        ),
        order_by=tuple(
            OrderItem(_strip_qualifiers(o.expr), o.descending)
            for o in query.order_by
        ),
    )


def _strip_qualifiers(expr: Expression) -> Expression:
    if isinstance(expr, Column):
        if expr.table is not None:
            return Column(expr.name)
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _strip_qualifiers(expr.left),
            _strip_qualifiers(expr.right),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _strip_qualifiers(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(_strip_qualifiers(a) for a in expr.args),
            expr.distinct,
        )
    if isinstance(expr, InList):
        return InList(
            _strip_qualifiers(expr.expr),
            tuple(_strip_qualifiers(v) for v in expr.values),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            _strip_qualifiers(expr.expr),
            _strip_qualifiers(expr.low),
            _strip_qualifiers(expr.high),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(_strip_qualifiers(expr.expr), expr.pattern, expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_strip_qualifiers(expr.expr), expr.negated)
    return expr
