"""Predicate and query normalization used by the semantic checker.

The canonicalizer rewrites queries into a normal form such that two
queries with the same denotation (over the supported analytic subset)
compare equal structurally:

- ``NOT`` is pushed down to atoms (De Morgan), double negation removed;
- ``BETWEEN`` becomes a conjunction of ``>=`` and ``<=``;
- single-member ``IN`` becomes ``=``; ``IN`` member lists are sorted
  and deduplicated;
- comparisons are oriented with the column on the left
  (``5 < x`` -> ``x > 5``);
- ``AND``/``OR`` trees are flattened, deduplicated, and sorted by
  canonical text;
- trivially-true conjuncts (``TRUE``) and false disjuncts are dropped.

These rules mirror what the SPES verifier achieves through denotational
semantics for the query shapes dashboards emit.
"""

from __future__ import annotations

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.formatter import format_expression

#: Comparison flips for orienting literals to the right side.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}

#: Negations of comparisons, for NOT push-down.
_NEGATE = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def normalize_predicate(expr: Expression | None) -> Expression | None:
    """Full normalization pipeline for a WHERE/HAVING predicate."""
    if expr is None:
        return None
    expr = push_not(expr)
    expr = expand_sugar(expr)
    expr = orient_comparisons(expr)
    expr = flatten_and_sort(expr)
    return expr


def push_not(expr: Expression, negate: bool = False) -> Expression:
    """Push NOT down to atomic predicates (De Morgan's laws)."""
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return push_not(expr.operand, not negate)
    if isinstance(expr, BinaryOp) and expr.is_boolean:
        op = expr.op
        if negate:
            op = "OR" if op == "AND" else "AND"
        return BinaryOp(
            op, push_not(expr.left, negate), push_not(expr.right, negate)
        )
    if not negate:
        return expr
    if isinstance(expr, BinaryOp) and expr.is_comparison:
        return BinaryOp(_NEGATE[expr.op], expr.left, expr.right)
    if isinstance(expr, InList):
        return InList(expr.expr, expr.values, not expr.negated)
    if isinstance(expr, Between):
        return Between(expr.expr, expr.low, expr.high, not expr.negated)
    if isinstance(expr, Like):
        return Like(expr.expr, expr.pattern, not expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(expr.expr, not expr.negated)
    return UnaryOp("NOT", expr)


def expand_sugar(expr: Expression) -> Expression:
    """Rewrite BETWEEN and singleton IN into comparisons."""
    if isinstance(expr, Between) and not expr.negated:
        return BinaryOp(
            "AND",
            expand_sugar(BinaryOp(">=", expr.expr, expr.low)),
            expand_sugar(BinaryOp("<=", expr.expr, expr.high)),
        )
    if isinstance(expr, Between) and expr.negated:
        return BinaryOp(
            "OR",
            expand_sugar(BinaryOp("<", expr.expr, expr.low)),
            expand_sugar(BinaryOp(">", expr.expr, expr.high)),
        )
    if isinstance(expr, InList):
        values = _sorted_unique_literals(expr.values)
        if len(values) == 1 and not expr.negated:
            return BinaryOp("=", expand_sugar(expr.expr), values[0])
        if len(values) == 1 and expr.negated:
            return BinaryOp("!=", expand_sugar(expr.expr), values[0])
        return InList(expand_sugar(expr.expr), tuple(values), expr.negated)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, expand_sugar(expr.left), expand_sugar(expr.right)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, expand_sugar(expr.operand))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(expand_sugar(a) for a in expr.args),
            expr.distinct,
        )
    if isinstance(expr, Like):
        return Like(expand_sugar(expr.expr), expr.pattern, expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(expand_sugar(expr.expr), expr.negated)
    return expr


def orient_comparisons(expr: Expression) -> Expression:
    """Put the non-literal side on the left of every comparison."""
    if isinstance(expr, BinaryOp) and expr.is_comparison:
        if isinstance(expr.left, Literal) and not isinstance(
            expr.right, Literal
        ):
            return BinaryOp(_FLIP[expr.op], expr.right, expr.left)
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            orient_comparisons(expr.left),
            orient_comparisons(expr.right),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, orient_comparisons(expr.operand))
    return expr


def flatten_and_sort(expr: Expression) -> Expression:
    """Flatten AND/OR trees, deduplicate branches, sort canonically."""
    if isinstance(expr, BinaryOp) and expr.is_boolean:
        branches = _collect(expr, expr.op)
        normalized = [flatten_and_sort(b) for b in branches]
        # Deduplicate then sort by canonical text for a stable order.
        unique: dict[str, Expression] = {}
        for branch in normalized:
            unique.setdefault(format_expression(branch), branch)
        ordered = [unique[k] for k in sorted(unique)]
        if len(ordered) == 1:
            return ordered[0]
        result = ordered[0]
        for branch in ordered[1:]:
            result = BinaryOp(expr.op, result, branch)
        return result
    return expr


def _collect(expr: Expression, op: str) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == op:
        return _collect(expr.left, op) + _collect(expr.right, op)
    return [expr]


def _sorted_unique_literals(
    values: tuple[Expression, ...],
) -> list[Expression]:
    """Sort and deduplicate IN-list members (literals sort by repr)."""
    seen: dict[str, Expression] = {}
    for value in values:
        seen.setdefault(format_expression(value), value)
    return [seen[k] for k in sorted(seen)]


def normalize_select_expression(expr: Expression) -> Expression:
    """Normalize a SELECT-list expression.

    ``COUNT(col)`` over a non-nullable grouping context is *not* folded
    to ``COUNT(*)`` — nullability is data-dependent, so the semantic
    checker stays conservative. Only argument normalization and sugar
    expansion apply.
    """
    return expand_sugar(expr)


def canonical_text(expr: Expression | None) -> str:
    """Stable text form of a (normalized) expression; '' for None."""
    if expr is None:
        return ""
    return format_expression(expr)
