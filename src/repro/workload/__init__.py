"""Synthetic datasets for the six paper dashboards.

The paper generates benchmark datasets synthetically (adopting the
techniques of the Crossfilter benchmark and IDEBench, §6.2.3) at 100K,
1M, and 10M rows. Each generator here is seeded and vectorized, with
schemas matching the quantitative/categorical column counts reported in
Figure 6, and injects the correlations the goal templates probe (e.g.
call volume vs. abandonment).
"""

from repro.workload.datasets import (
    DATASET_NAMES,
    DATASET_SIZES,
    RETAIL_STAR_DIMENSIONS,
    dataset_schema,
    generate_dataset,
    generate_retail_orders,
)
from repro.workload.normalize import (
    DimensionSpec,
    StarSchema,
    load_star,
    normalize_star,
    reassembly_query,
)

__all__ = [
    "DATASET_NAMES",
    "DATASET_SIZES",
    "DimensionSpec",
    "RETAIL_STAR_DIMENSIONS",
    "StarSchema",
    "dataset_schema",
    "generate_dataset",
    "generate_retail_orders",
    "load_star",
    "normalize_star",
    "reassembly_query",
]
