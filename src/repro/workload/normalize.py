"""Star-schema normalization of the benchmark datasets.

The paper denormalizes every dataset before loading it (§6.2.2:
"Datasets were denormalized and no indexing or caching was applied").
This module makes that choice ablatable: it splits a denormalized table
into a fact table plus dimension tables (the star schema a production
Database Specification would describe), and rewrites dashboard queries
into the equivalent join queries so the same workload can run against
either layout. ``benchmarks/bench_ablation_denormalization.py`` uses it
to quantify what denormalization buys on each engine.

The split is lossless for functionally dependent attributes: every
dimension attribute must be determined by the dimension key. With
``strict=True`` (the default) a violated dependency raises
:class:`~repro.errors.SchemaError`; with ``strict=False`` the first
observed value wins, which mirrors what an ETL pipeline with a stale
dimension feed would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.table import ColumnDef, Schema, Table
from repro.errors import SchemaError
from repro.sql.ast import Column, Join, Query, TableRef, referenced_columns, replace_query

__all__ = [
    "DimensionSpec",
    "StarSchema",
    "normalize_star",
    "reassembly_query",
    "load_star",
]


@dataclass(frozen=True)
class DimensionSpec:
    """One dimension to extract from a denormalized table.

    Parameters
    ----------
    name:
        Dimension name; the extracted table is called
        ``<base>_<name>``.
    key:
        The key column. It stays in the fact table as the foreign key
        and becomes the dimension's primary key.
    attributes:
        Columns functionally dependent on ``key`` that move out of the
        fact table into the dimension.
    """

    name: str
    key: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError(
                f"dimension {self.name!r} needs at least one attribute"
            )
        if self.key in self.attributes:
            raise SchemaError(
                f"dimension {self.name!r}: key {self.key!r} cannot also "
                "be an attribute"
            )


@dataclass
class StarSchema:
    """A fact table, its dimensions, and the joins that reassemble them."""

    fact: Table
    dimensions: list[Table]
    #: Parallel to ``dimensions``: the join clause that reattaches each.
    joins: list[Join]
    #: Maps each moved attribute to the dimension table that now owns it.
    attribute_owner: dict[str, str] = field(default_factory=dict)

    @property
    def tables(self) -> list[Table]:
        """All tables of the star schema, fact first."""
        return [self.fact] + list(self.dimensions)

    def joins_for(self, columns: set[str]) -> list[Join]:
        """The joins needed to materialize the given attribute columns."""
        needed: set[str] = set()
        for column in columns:
            owner = self.attribute_owner.get(column)
            if owner is not None:
                needed.add(owner)
        return [j for j in self.joins if j.table.name in needed]


def normalize_star(
    table: Table,
    dimensions: list[DimensionSpec],
    strict: bool = True,
) -> StarSchema:
    """Split a denormalized table into a star schema.

    Raises
    ------
    SchemaError
        For unknown/overlapping columns, or (with ``strict=True``) when a
        dimension attribute is not functionally dependent on its key.
    """
    _validate_specs(table, dimensions)
    dim_tables: list[Join] = []
    fact_name = table.name
    moved: set[str] = set()
    dim_list: list[Table] = []
    joins: list[Join] = []
    attribute_owner: dict[str, str] = {}

    for spec in dimensions:
        dim_table = _extract_dimension(table, spec, strict)
        dim_list.append(dim_table)
        joins.append(
            Join(
                TableRef(dim_table.name),
                Column(spec.key, table=fact_name),
                Column(spec.key, table=dim_table.name),
                "INNER",
            )
        )
        moved.update(spec.attributes)
        for attribute in spec.attributes:
            attribute_owner[attribute] = dim_table.name

    fact_columns = [n for n in table.schema.names if n not in moved]
    fact_schema = Schema(
        [table.schema.column(n) for n in fact_columns]
    )
    fact = Table(
        fact_name,
        fact_schema,
        {n: table.column(n) for n in fact_columns},
    )
    return StarSchema(
        fact=fact,
        dimensions=dim_list,
        joins=joins,
        attribute_owner=attribute_owner,
    )


def reassembly_query(star: StarSchema, query: Query) -> Query:
    """Rewrite a denormalized-table query to run on the star schema.

    Joins in exactly the dimensions whose attributes the query touches —
    the same pruning a production data layer performs when it resolves a
    visualization's columns against the Database Specification (§3.0.3).
    """
    if query.from_table.name != star.fact.name:
        raise SchemaError(
            f"query reads {query.from_table.name!r}, star schema is over "
            f"{star.fact.name!r}"
        )
    if query.joins:
        raise SchemaError("query already contains joins")
    needed = star.joins_for(referenced_columns(query))
    return replace_query(query, joins=tuple(needed))


def load_star(engine, star: StarSchema) -> None:
    """Load every star-schema table into an engine."""
    for table in star.tables:
        engine.load_table(table)


def _validate_specs(table: Table, dimensions: list[DimensionSpec]) -> None:
    claimed: dict[str, str] = {}
    for spec in dimensions:
        for column in (spec.key, *spec.attributes):
            if column not in table.schema:
                raise SchemaError(
                    f"dimension {spec.name!r}: column {column!r} not in "
                    f"table {table.name!r}"
                )
        for attribute in spec.attributes:
            if attribute in claimed:
                raise SchemaError(
                    f"column {attribute!r} claimed by both dimensions "
                    f"{claimed[attribute]!r} and {spec.name!r}"
                )
            claimed[attribute] = spec.name


def _extract_dimension(
    table: Table, spec: DimensionSpec, strict: bool
) -> Table:
    key_values = table.column(spec.key)
    attr_values = {a: table.column(a) for a in spec.attributes}
    seen: dict[object, tuple[object, ...]] = {}
    for i, key in enumerate(key_values):
        if key is None:
            continue  # NULL keys stay fact-side only (no dimension row).
        row = tuple(attr_values[a][i] for a in spec.attributes)
        previous = seen.get(key)
        if previous is None:
            seen[key] = row
        elif strict and previous != row:
            raise SchemaError(
                f"dimension {spec.name!r}: key {key!r} maps to conflicting "
                f"attribute tuples {previous!r} and {row!r} "
                "(not functionally dependent; pass strict=False to keep "
                "the first)"
            )
    schema = Schema(
        [table.schema.column(spec.key)]
        + [table.schema.column(a) for a in spec.attributes]
    )
    keys = sorted(seen, key=_dimension_sort_key)
    columns: dict[str, list[object]] = {spec.key: list(keys)}
    for position, attribute in enumerate(spec.attributes):
        columns[attribute] = [seen[k][position] for k in keys]
    return Table(f"{table.name}_{spec.name}", schema, columns)


def _dimension_sort_key(value: object):
    from repro.engine.types import sort_key

    return sort_key(value)
