"""Seeded synthetic dataset generators (one per paper dashboard).

Schemas match Figure 6's column counts:

=================== ===== ===== =========================================
Dataset             Quant Categ Temporal (extra)
=================== ===== ===== =========================================
circulation           2     2   checkout date
supply_chain          5    18   order date
ubc_energy           22     4   reading date
myride               10     3   sample timestamp
it_monitor            3     5   event timestamp
customer_service     10     6   call timestamp
=================== ===== ===== =========================================

Generators are fully vectorized (numpy) and deterministic per seed, so
the 100K/1M/10M sizes of Table 3 are all reachable. Correlations that
the goal templates probe are injected explicitly — e.g. customer-service
abandonment rises with hourly call volume, and IT latency rises with
CPU — so "Finding Correlations" goals have real signal.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.engine.table import ColumnDef, Schema, Table
from repro.engine.types import DataType
from repro.errors import ConfigError

#: Dataset sizes used in the paper's experiments (Table 3).
DATASET_SIZES = {"100K": 100_000, "1M": 1_000_000, "10M": 10_000_000}

_BASE_DATE = _dt.date(2024, 1, 1)
_BASE_DATETIME = _dt.datetime(2024, 1, 1)


def _dates(rng: np.random.Generator, n: int, days: int = 365) -> list[_dt.date]:
    offsets = rng.integers(0, days, size=n)
    return [_BASE_DATE + _dt.timedelta(days=int(o)) for o in offsets]


def _timestamps(
    rng: np.random.Generator, n: int, days: int = 30
) -> list[_dt.datetime]:
    seconds = rng.integers(0, days * 86_400, size=n)
    return [_BASE_DATETIME + _dt.timedelta(seconds=int(s)) for s in seconds]


def _choice(
    rng: np.random.Generator,
    values: list[str],
    n: int,
    p: list[float] | None = None,
) -> list[str]:
    # Plain Python strings, not np.str_, so values repr cleanly in logs.
    return [str(v) for v in rng.choice(values, size=n, p=p)]


# ---------------------------------------------------------------------------
# Circulation Activity by Library (2Q, 2C) — strategic decision making
# ---------------------------------------------------------------------------


def generate_circulation(num_rows: int, seed: int = 0) -> Table:
    """Library circulation events: per-branch checkouts and renewals."""
    rng = np.random.default_rng(seed)
    branches = [
        "Central", "Northgate", "Ballard", "Fremont", "Columbia",
        "Beacon Hill", "Green Lake", "West Seattle",
    ]
    item_types = ["Book", "DVD", "Audiobook", "Magazine", "Game"]
    branch = _choice(rng, branches, num_rows)
    # Central branch circulates roughly 3x more than the smallest.
    weight = np.array([3.0, 2.0, 1.8, 1.5, 1.2, 1.1, 1.0, 1.0])
    branch_index = np.array([branches.index(b) for b in branch])
    checkouts = rng.poisson(4 * weight[branch_index]) + 1
    renewals = rng.binomial(checkouts, 0.35)
    schema = Schema(
        [
            ColumnDef("branch", DataType.STRING),
            ColumnDef("item_type", DataType.STRING),
            ColumnDef("checkouts", DataType.INTEGER),
            ColumnDef("renewals", DataType.INTEGER),
            ColumnDef("checkout_date", DataType.DATE),
        ]
    )
    return Table(
        "circulation",
        schema,
        {
            "branch": branch,
            "item_type": _choice(rng, item_types, num_rows),
            "checkouts": [int(v) for v in checkouts],
            "renewals": [int(v) for v in renewals],
            "checkout_date": _dates(rng, num_rows),
        },
    )


# ---------------------------------------------------------------------------
# Supply Chain (5Q, 18C) — strategic decision making
# ---------------------------------------------------------------------------


def generate_supply_chain(num_rows: int, seed: int = 0) -> Table:
    """Order logistics: products, shipping, costs, 18 categorical facets."""
    rng = np.random.default_rng(seed)
    n = num_rows
    categorical: dict[str, list[str]] = {
        "region": ["East", "West", "Central", "South"],
        "country": ["USA", "Canada", "Mexico"],
        "state": ["WA", "CA", "TX", "NY", "FL", "IL", "OH", "GA"],
        "city": ["Seattle", "Austin", "Chicago", "Miami", "Denver", "Boston"],
        "segment": ["Consumer", "Corporate", "Home Office"],
        "category": ["Furniture", "Office Supplies", "Technology"],
        "subcategory": [
            "Chairs", "Tables", "Phones", "Binders", "Paper", "Storage",
        ],
        "product_line": ["Standard", "Premium", "Economy"],
        "ship_mode": ["First Class", "Second Class", "Standard", "Same Day"],
        "order_priority": ["Low", "Medium", "High", "Critical"],
        "customer_tier": ["Bronze", "Silver", "Gold", "Platinum"],
        "warehouse": ["WH-1", "WH-2", "WH-3", "WH-4", "WH-5"],
        "carrier": ["UPS", "FedEx", "USPS", "DHL"],
        "payment_method": ["Card", "Invoice", "Wire"],
        "channel": ["Online", "Store", "Phone"],
        "supplier": ["Acme", "Globex", "Initech", "Umbrella"],
        "plant": ["P-North", "P-South", "P-East"],
        "returned": ["Yes", "No"],
    }
    columns: dict[str, list[object]] = {
        name: _choice(rng, values, n) for name, values in categorical.items()
    }
    quantity = rng.integers(1, 15, size=n)
    unit_price = rng.gamma(shape=2.0, scale=40.0, size=n) + 5
    sales = quantity * unit_price
    discount = rng.choice([0.0, 0.05, 0.1, 0.2, 0.3], size=n)
    profit = sales * (0.25 - discount) + rng.normal(0, 10, size=n)
    shipping_cost = 2.0 + sales * 0.03 + rng.gamma(2.0, 2.0, size=n)
    columns.update(
        {
            "sales": [round(float(v), 2) for v in sales],
            "quantity": [int(v) for v in quantity],
            "discount": [float(v) for v in discount],
            "profit": [round(float(v), 2) for v in profit],
            "shipping_cost": [round(float(v), 2) for v in shipping_cost],
            "order_date": _dates(rng, n),
        }
    )
    schema = Schema(
        [ColumnDef(name, DataType.STRING) for name in categorical]
        + [
            ColumnDef("sales", DataType.FLOAT),
            ColumnDef("quantity", DataType.INTEGER),
            ColumnDef("discount", DataType.FLOAT),
            ColumnDef("profit", DataType.FLOAT),
            ColumnDef("shipping_cost", DataType.FLOAT),
            ColumnDef("order_date", DataType.DATE),
        ]
    )
    return Table("supply_chain", schema, columns)


# ---------------------------------------------------------------------------
# UBC Energy Map (22Q, 4C) — strategic decision making
# ---------------------------------------------------------------------------


def generate_ubc_energy(num_rows: int, seed: int = 0) -> Table:
    """Campus building energy readings with 22 quantitative columns."""
    rng = np.random.default_rng(seed)
    n = num_rows
    buildings = [f"Building {chr(65 + i)}" for i in range(20)]
    energy_types = ["Electricity", "Steam", "Gas", "Chilled Water"]
    zones = ["North", "South", "East", "West"]
    usage_categories = ["Lab", "Office", "Residence", "Classroom"]
    building = _choice(rng, buildings, n)
    building_scale = {
        b: float(s) for b, s in zip(buildings, rng.uniform(0.5, 3.0, 20))
    }
    scale = np.array([building_scale[b] for b in building])

    columns: dict[str, list[object]] = {
        "building": building,
        "energy_type": _choice(rng, energy_types, n),
        "zone": _choice(rng, zones, n),
        "usage_category": _choice(rng, usage_categories, n),
    }
    quant_defs: list[ColumnDef] = []
    # Twelve monthly usage columns with a seasonal curve.
    months = [
        "jan", "feb", "mar", "apr", "may", "jun",
        "jul", "aug", "sep", "oct", "nov", "dec",
    ]
    for i, month in enumerate(months):
        seasonal = 1.0 + 0.5 * np.cos(2 * np.pi * (i - 0.5) / 12)
        usage = rng.gamma(2.0, 50.0, size=n) * scale * seasonal
        name = f"usage_{month}"
        columns[name] = [round(float(v), 1) for v in usage]
        quant_defs.append(ColumnDef(name, DataType.FLOAT))
    annual = np.sum(
        [np.array(columns[f"usage_{m}"]) for m in months], axis=0
    )
    extras = {
        "annual_usage": annual,
        "floor_area": rng.uniform(500, 20_000, size=n) * scale,
        "occupancy": rng.integers(10, 2_000, size=n).astype(float),
        "baseline": annual * rng.uniform(0.7, 0.9, size=n),
        "peak_demand": annual / 12 * rng.uniform(1.5, 3.0, size=n),
        "energy_cost": annual * rng.uniform(0.08, 0.15, size=n),
        "emissions": annual * rng.uniform(0.2, 0.5, size=n),
        "efficiency_score": rng.uniform(0, 100, size=n),
        "water_usage": rng.gamma(2.0, 100.0, size=n) * scale,
        "gas_usage": rng.gamma(2.0, 30.0, size=n) * scale,
    }
    for name, values in extras.items():
        columns[name] = [round(float(v), 1) for v in values]
        quant_defs.append(ColumnDef(name, DataType.FLOAT))
    columns["reading_date"] = _dates(rng, n)
    schema = Schema(
        [
            ColumnDef("building", DataType.STRING),
            ColumnDef("energy_type", DataType.STRING),
            ColumnDef("zone", DataType.STRING),
            ColumnDef("usage_category", DataType.STRING),
        ]
        + quant_defs
        + [ColumnDef("reading_date", DataType.DATE)]
    )
    return Table("ubc_energy", schema, columns)


# ---------------------------------------------------------------------------
# MyRide (10Q, 3C) — quantified self
# ---------------------------------------------------------------------------


def generate_myride(num_rows: int, seed: int = 0) -> Table:
    """Cycling telemetry: heart rate along a route in Orlando, FL."""
    rng = np.random.default_rng(seed)
    n = num_rows
    # Smooth-ish ride dynamics: speed varies, heart rate follows effort.
    gradient = rng.normal(0, 2.5, size=n)
    speed = np.clip(rng.normal(24, 6, size=n) - gradient * 1.2, 2, 60)
    power = np.clip(150 + gradient * 25 + rng.normal(0, 30, size=n), 0, 900)
    heart_rate = np.clip(
        95 + power * 0.35 + rng.normal(0, 8, size=n), 60, 205
    )
    cadence = np.clip(rng.normal(85, 12, size=n), 20, 130)
    elevation = np.clip(
        30 + np.cumsum(rng.normal(0, 0.5, size=n)) % 80, 0, 150
    )
    distance = np.sort(rng.uniform(0, 60, size=n))
    columns: dict[str, list[object]] = {
        "segment": _choice(
            rng, ["Downtown", "Lakefront", "Park Loop", "Highway"], n
        ),
        "zone": _choice(rng, ["Z1", "Z2", "Z3", "Z4", "Z5"], n),
        "surface": _choice(rng, ["Asphalt", "Gravel", "Trail"], n),
        "heart_rate": [round(float(v), 1) for v in heart_rate],
        "speed": [round(float(v), 2) for v in speed],
        "elevation": [round(float(v), 1) for v in elevation],
        "distance": [round(float(v), 3) for v in distance],
        "cadence": [round(float(v), 1) for v in cadence],
        "power": [round(float(v), 1) for v in power],
        "temperature": [round(float(v), 1) for v in rng.normal(29, 3, n)],
        "gradient": [round(float(v), 2) for v in gradient],
        "latitude": [round(float(v), 6) for v in 28.5 + rng.uniform(0, 0.2, n)],
        "longitude": [
            round(float(v), 6) for v in -81.4 + rng.uniform(0, 0.2, n)
        ],
        "ts": _timestamps(rng, n, days=1),
    }
    schema = Schema(
        [
            ColumnDef("segment", DataType.STRING),
            ColumnDef("zone", DataType.STRING),
            ColumnDef("surface", DataType.STRING),
            ColumnDef("heart_rate", DataType.FLOAT),
            ColumnDef("speed", DataType.FLOAT),
            ColumnDef("elevation", DataType.FLOAT),
            ColumnDef("distance", DataType.FLOAT),
            ColumnDef("cadence", DataType.FLOAT),
            ColumnDef("power", DataType.FLOAT),
            ColumnDef("temperature", DataType.FLOAT),
            ColumnDef("gradient", DataType.FLOAT),
            ColumnDef("latitude", DataType.FLOAT),
            ColumnDef("longitude", DataType.FLOAT),
            ColumnDef("ts", DataType.TIMESTAMP),
        ]
    )
    return Table("myride", schema, columns)


# ---------------------------------------------------------------------------
# IT Monitor (3Q, 5C) — operational decision making
# ---------------------------------------------------------------------------


def generate_it_monitor(num_rows: int, seed: int = 0) -> Table:
    """System telemetry with injected anomalies (latency follows CPU)."""
    rng = np.random.default_rng(seed)
    n = num_rows
    hosts = [f"host-{i:02d}" for i in range(16)]
    cpu = np.clip(rng.beta(2, 5, size=n) * 100, 0, 100)
    anomaly = rng.random(n) < 0.03
    cpu[anomaly] = rng.uniform(85, 100, size=int(anomaly.sum()))
    memory = np.clip(cpu * 0.6 + rng.normal(20, 10, size=n), 0, 100)
    # Heavy-tailed latency: the bulk sits under ~60 ms but anomalous
    # hosts reach seconds, so the latency axis is mostly empty space —
    # random range filters over it frequently select zero rows, the
    # behaviour behind the paper's IT-Monitoring user-study finding.
    latency = np.clip(
        5 + np.exp(cpu / 12) + rng.gamma(2.0, 3.0, size=n), 1, 2_000
    )
    severity = np.where(
        cpu > 90, "critical",
        np.where(cpu > 75, "warning", "info"),
    )
    columns: dict[str, list[object]] = {
        "host": _choice(rng, hosts, n),
        "datacenter": _choice(rng, ["us-east", "us-west", "eu-central"], n),
        "service": _choice(
            rng, ["api", "db", "cache", "queue", "frontend"], n
        ),
        "severity": [str(v) for v in severity],
        "status": _choice(rng, ["ok", "degraded", "down"], n, [0.9, 0.08, 0.02]),
        "cpu": [round(float(v), 2) for v in cpu],
        "memory": [round(float(v), 2) for v in memory],
        "latency": [round(float(v), 2) for v in latency],
        "ts": _timestamps(rng, n, days=7),
    }
    schema = Schema(
        [
            ColumnDef("host", DataType.STRING),
            ColumnDef("datacenter", DataType.STRING),
            ColumnDef("service", DataType.STRING),
            ColumnDef("severity", DataType.STRING),
            ColumnDef("status", DataType.STRING),
            ColumnDef("cpu", DataType.FLOAT),
            ColumnDef("memory", DataType.FLOAT),
            ColumnDef("latency", DataType.FLOAT),
            ColumnDef("ts", DataType.TIMESTAMP),
        ]
    )
    return Table("it_monitor", schema, columns)


# ---------------------------------------------------------------------------
# Customer Service (10Q, 6C) — operational decision making (Figure 1)
# ---------------------------------------------------------------------------


def generate_customer_service(num_rows: int, seed: int = 0) -> Table:
    """Call-center records: the paper's running example.

    Injected relationship: abandonment probability grows with hourly
    call volume, so the "call volume vs. call abandonment" correlation
    goal (Example 2.2) has genuine signal.
    """
    rng = np.random.default_rng(seed)
    n = num_rows
    reps = [f"rep-{i:02d}" for i in range(12)]
    # Busy-hours curve peaking mid-day.
    hours = np.arange(24)
    hour_weights = 1.0 + 4.0 * np.exp(-((hours - 13) ** 2) / 18.0)
    hour_probabilities = hour_weights / hour_weights.sum()
    hour = rng.choice(hours, size=n, p=hour_probabilities)
    volume_factor = hour_weights[hour] / hour_weights.max()
    abandoned = (rng.random(n) < 0.04 + 0.12 * volume_factor).astype(int)
    lost = (rng.random(n) < 0.02 + 0.05 * volume_factor).astype(int)
    duration = rng.gamma(2.0, 3.0, size=n) + 0.5
    hold = rng.gamma(1.5, 1.0, size=n) * (1 + volume_factor)
    talk = duration * rng.uniform(0.5, 0.9, size=n)
    wrap = rng.gamma(1.2, 0.5, size=n)
    transfers = rng.binomial(2, 0.15, size=n)
    satisfaction = np.clip(
        rng.normal(4.2, 0.8, size=n) - abandoned * 1.5 - hold * 0.05, 1, 5
    )
    columns: dict[str, list[object]] = {
        "repID": _choice(rng, reps, n),
        "queue": _choice(rng, ["A", "B", "C", "D"], n, [0.4, 0.3, 0.2, 0.1]),
        "callDirection": _choice(rng, ["incoming", "outgoing"], n, [0.8, 0.2]),
        "dayOfWeek": _choice(
            rng, ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"], n
        ),
        "shift": _choice(rng, ["morning", "afternoon", "night"], n),
        "team": _choice(rng, ["Alpha", "Bravo", "Charlie"], n),
        "hour": [int(v) for v in hour],
        "calls": [1] * n,  # one row per call; COUNT(calls) tallies volume
        "abandoned": [int(v) for v in abandoned],
        "lostCalls": [int(v) for v in lost],
        "duration": [round(float(v), 2) for v in duration],
        "holdTime": [round(float(v), 2) for v in hold],
        "talkTime": [round(float(v), 2) for v in talk],
        "wrapTime": [round(float(v), 2) for v in wrap],
        "transfers": [int(v) for v in transfers],
        "satisfaction": [round(float(v), 2) for v in satisfaction],
        "ts": _timestamps(rng, n, days=14),
    }
    schema = Schema(
        [
            ColumnDef("repID", DataType.STRING),
            ColumnDef("queue", DataType.STRING),
            ColumnDef("callDirection", DataType.STRING),
            ColumnDef("dayOfWeek", DataType.STRING),
            ColumnDef("shift", DataType.STRING),
            ColumnDef("team", DataType.STRING),
            ColumnDef("hour", DataType.INTEGER),
            ColumnDef("calls", DataType.INTEGER),
            ColumnDef("abandoned", DataType.INTEGER),
            ColumnDef("lostCalls", DataType.INTEGER),
            ColumnDef("duration", DataType.FLOAT),
            ColumnDef("holdTime", DataType.FLOAT),
            ColumnDef("talkTime", DataType.FLOAT),
            ColumnDef("wrapTime", DataType.FLOAT),
            ColumnDef("transfers", DataType.INTEGER),
            ColumnDef("satisfaction", DataType.FLOAT),
            ColumnDef("ts", DataType.TIMESTAMP),
        ]
    )
    return Table("customer_service", schema, columns)


# ---------------------------------------------------------------------------
# Retail orders — star-schema ablation dataset (not one of the six
# dashboards; exists so the denormalization ablation has genuine
# functional dependencies to normalize on)
# ---------------------------------------------------------------------------


def generate_retail_orders(num_rows: int, seed: int = 0) -> Table:
    """Denormalized order events with genuine FK-shaped dependencies.

    Functional dependencies baked in:

    - ``product_id`` → ``category``, ``unit_price``
    - ``store_id``   → ``city``, ``region``

    which is exactly the shape :func:`repro.workload.normalize.
    normalize_star` extracts into dimension tables. The six paper
    dashboards stay denormalized (the paper's §6.2.2 setup); this
    dataset exists for the denormalization ablation bench.
    """
    rng = np.random.default_rng(seed)
    n = num_rows
    num_products = 60
    num_stores = 24

    categories = ["Furniture", "Office Supplies", "Technology", "Apparel"]
    product_category = [
        categories[i % len(categories)] for i in range(num_products)
    ]
    product_price = [
        round(float(p), 2)
        for p in rng.uniform(3, 900, size=num_products)
    ]
    cities = [f"City-{i:02d}" for i in range(num_stores)]
    regions = ["east", "west", "central"]
    store_region = [regions[i % len(regions)] for i in range(num_stores)]

    product_ids = rng.integers(0, num_products, size=n)
    store_ids = rng.integers(0, num_stores, size=n)
    quantity = rng.integers(1, 12, size=n)
    discount = np.round(rng.choice([0.0, 0.05, 0.1, 0.2], size=n), 2)
    unit_price = np.array([product_price[p] for p in product_ids])
    revenue = np.round(unit_price * quantity * (1 - discount), 2)

    columns: dict[str, list[object]] = {
        "order_id": list(range(1, n + 1)),
        "product_id": [int(p) for p in product_ids],
        "category": [product_category[p] for p in product_ids],
        "unit_price": [product_price[p] for p in product_ids],
        "store_id": [int(s) for s in store_ids],
        "city": [cities[s] for s in store_ids],
        "region": [store_region[s] for s in store_ids],
        "quantity": [int(q) for q in quantity],
        "discount": [float(d) for d in discount],
        "revenue": [float(r) for r in revenue],
        "order_date": _dates(rng, n, days=365),
    }
    schema = Schema(
        [
            ColumnDef("order_id", DataType.INTEGER),
            ColumnDef("product_id", DataType.INTEGER),
            ColumnDef("category", DataType.STRING),
            ColumnDef("unit_price", DataType.FLOAT),
            ColumnDef("store_id", DataType.INTEGER),
            ColumnDef("city", DataType.STRING),
            ColumnDef("region", DataType.STRING),
            ColumnDef("quantity", DataType.INTEGER),
            ColumnDef("discount", DataType.FLOAT),
            ColumnDef("revenue", DataType.FLOAT),
            ColumnDef("order_date", DataType.DATE),
        ]
    )
    return Table("retail_orders", schema, columns)


#: The DimensionSpec arguments that normalize retail_orders losslessly.
RETAIL_STAR_DIMENSIONS = (
    ("product", "product_id", ("category", "unit_price")),
    ("store", "store_id", ("city", "region")),
)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_GENERATORS = {
    "circulation": generate_circulation,
    "supply_chain": generate_supply_chain,
    "ubc_energy": generate_ubc_energy,
    "myride": generate_myride,
    "it_monitor": generate_it_monitor,
    "customer_service": generate_customer_service,
}

#: Names of all datasets, matching the six dashboards.
DATASET_NAMES = sorted(_GENERATORS)


def generate_dataset(name: str, num_rows: int, seed: int = 0) -> Table:
    """Generate a named dataset at the given size."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {DATASET_NAMES}"
        ) from None
    if num_rows <= 0:
        raise ConfigError("num_rows must be positive")
    return generator(num_rows, seed)


def dataset_schema(name: str) -> Schema:
    """Schema of a dataset without generating the full data."""
    return generate_dataset(name, 8, seed=0).schema
