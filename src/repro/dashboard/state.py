"""Dashboard state, interactions, and filter propagation.

:class:`DashboardState` is the joint representation in action: it holds
the interaction-layer state (widget selections, mark selections) and
derives the data-layer state (one SQL query per visualization) on
demand. Applying an :class:`Interaction` updates the state and returns
the queries re-emitted by every affected visualization — exactly the
propagation process of paper §3.0.3 and Example 3.1.

States are cheaply copyable so the Oracle planner can expand candidate
next-states without mutating the live dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dashboard.components import (
    MAX_OPTIONS,
    VisualizationRuntime,
    WidgetRuntime,
)
from repro.dashboard.datalayer import build_refresh, filtered_query
from repro.dashboard.graph import DashboardGraph
from repro.dashboard.spec import DashboardSpec
from repro.engine.table import Table
from repro.errors import InteractionError
from repro.sql.ast import Expression, Query


class InteractionKind(Enum):
    """The interaction vocabulary of the simulation.

    All are *data manipulations* in the paper's taxonomy (they use the
    dashboard as-is). Interface manipulations (adding/removing
    visualizations) are modeled separately by the IDEBench baseline,
    which is not constrained by a fixed dashboard.
    """

    WIDGET_TOGGLE = "widget_toggle"  # checkbox/multiselect member on/off
    WIDGET_SET = "widget_set"        # radio/dropdown selection or slider range
    WIDGET_CLEAR = "widget_clear"    # deactivate a widget's filter
    VIZ_SELECT = "viz_select"        # click a mark to cross-filter
    VIZ_CLEAR = "viz_clear"          # clear mark selections
    RESET = "reset"                  # reset the whole dashboard


@dataclass(frozen=True)
class Interaction:
    """One atomic user interaction.

    ``value`` depends on the kind: an option member for toggles, a
    member or ``(low, high)`` tuple for sets, a ``(column, value)``
    pair for mark selections, ``None`` for clears/reset.
    """

    kind: InteractionKind
    target: str | None = None
    value: object = None

    def describe(self) -> str:
        """Human-readable log line (used in the user-study logs)."""
        if self.kind is InteractionKind.RESET:
            return "reset dashboard"
        if self.kind is InteractionKind.WIDGET_TOGGLE:
            return f"toggle {self.value!r} on {self.target}"
        if self.kind is InteractionKind.WIDGET_SET:
            return f"set {self.target} to {self.value!r}"
        if self.kind is InteractionKind.WIDGET_CLEAR:
            return f"clear {self.target}"
        if self.kind is InteractionKind.VIZ_SELECT:
            column, value = self.value  # type: ignore[misc]
            return f"select {column}={value!r} in {self.target}"
        return f"clear selection in {self.target}"


class DashboardState:
    """Live dashboard: interaction-layer state + data-layer queries."""

    def __init__(
        self,
        spec: DashboardSpec,
        table: Table,
        graph: DashboardGraph | None = None,
    ) -> None:
        self.spec = spec
        self.table = table
        self.graph = graph or DashboardGraph(spec)
        self.widgets = {
            w.id: WidgetRuntime(w, table) for w in spec.interface.widgets
        }
        self.visualizations = {
            v.id: VisualizationRuntime(v, table)
            for v in spec.interface.visualizations
        }
        # Interaction-layer state.
        self.widget_state: dict[str, object] = {
            w_id: None for w_id in self.widgets
        }
        self.viz_selection: dict[str, frozenset[tuple[str, object]]] = {
            v_id: frozenset() for v_id in self.visualizations
        }

    # -- copying (for planner lookahead) ---------------------------------------

    def copy(self) -> "DashboardState":
        clone = DashboardState.__new__(DashboardState)
        clone.spec = self.spec
        clone.table = self.table
        clone.graph = self.graph
        clone.widgets = self.widgets
        clone.visualizations = self.visualizations
        clone.widget_state = dict(self.widget_state)
        clone.viz_selection = dict(self.viz_selection)
        return clone

    def state_key(self) -> tuple:
        """Hashable key identifying this interaction-layer state."""
        widget_part = tuple(
            (w_id, _freeze(self.widget_state[w_id]))
            for w_id in sorted(self.widget_state)
        )
        viz_part = tuple(
            (v_id, tuple(sorted(self.viz_selection[v_id], key=repr)))
            for v_id in sorted(self.viz_selection)
        )
        return (widget_part, viz_part)

    # -- data layer ------------------------------------------------------------

    def filters_for(self, viz_id: str) -> list[Expression]:
        """Collect active filters from every influencer of ``viz_id``."""
        filters: list[Expression] = []
        for influencer in self.graph.influencers(viz_id):
            kind = self.graph.kind(influencer)
            if kind == "widget":
                runtime = self.widgets[influencer]
                predicate = runtime.filter_for(self.widget_state[influencer])
                if predicate is not None:
                    filters.append(predicate)
            else:
                selections = self.viz_selection.get(influencer, frozenset())
                if selections:
                    filters.extend(
                        self.visualizations[influencer].filter_for_selection(
                            selections
                        )
                    )
        return filters

    def query_for(self, viz_id: str) -> Query:
        """The SQL query currently backing one visualization."""
        runtime = self.visualizations[viz_id]
        return filtered_query(
            runtime.spec, self.spec, self.filters_for(viz_id)
        )

    def all_queries(self) -> dict[str, Query]:
        """Data-layer snapshot: every visualization's current query."""
        return {v_id: self.query_for(v_id) for v_id in self.visualizations}

    def initial_queries(self) -> list[Query]:
        """Queries emitted when the dashboard first renders."""
        return [self.query_for(v_id) for v_id in sorted(self.visualizations)]

    # -- refresh paths (batch API) ---------------------------------------------

    def refresh(self, engine, viz_ids=None, policy=None, *,
                batch: bool | None = None, workers: int | None = None,
                shards: int | None = None, multiplan: bool | None = None):
        """Execute the current queries of (all or selected) nodes.

        ``policy`` (an :class:`~repro.execution.ExecutionPolicy` or
        preset name) picks the execution strategy; the default routes
        through the shared-scan batch executor
        (:meth:`~repro.engine.interface.Engine.execute_batch`) on one
        worker. Every policy returns byte-identical results — workers
        overlap scan groups, shards split base scans with
        partial-aggregate rollup, multiplan combines unfiltered groups
        into one pass (:mod:`repro.concurrency`, :mod:`repro.sharding`,
        :mod:`repro.engine.multiplan`). The per-knob keywords are
        deprecated and map onto the equivalent policy. Returns timed
        results keyed by visualization id.
        """
        from repro.execution import ExecutionPolicy, resolve_policy
        from repro.telemetry import trace as _trace

        policy = resolve_policy(
            policy,
            api="DashboardState.refresh",
            default=ExecutionPolicy(),
            batch=batch,
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        refresh = build_refresh(self, viz_ids)
        tracer = _trace.ACTIVE
        if tracer is None:
            return refresh.execute(engine, policy)
        with tracer.span(
            "refresh",
            dashboard=self.spec.name,
            policy=policy.describe(),
        ) as span:
            results = refresh.execute(engine, policy)
            span.attrs["queries"] = len(results)
            return results

    def apply_and_refresh(
        self, interaction: Interaction, engine, policy=None, *,
        batch: bool | None = None, workers: int | None = None,
        shards: int | None = None, multiplan: bool | None = None,
    ):
        """Apply an interaction and execute its fan-out as one batch.

        The re-emitted queries of every affected visualization are
        evaluated together under ``policy`` — the shared-scan path a
        live dashboard backend takes on each user gesture. Returns
        timed results keyed by visualization id.
        """
        from repro.execution import ExecutionPolicy, resolve_policy

        policy = resolve_policy(
            policy,
            api="DashboardState.apply_and_refresh",
            default=ExecutionPolicy(),
            batch=batch,
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        affected = self.apply_affected(interaction)
        return self.refresh(engine, viz_ids=affected, policy=policy)

    # -- applying interactions ---------------------------------------------------

    def apply(self, interaction: Interaction) -> list[Query]:
        """Apply an interaction; return the re-emitted queries.

        The affected visualizations are those reachable from the
        interaction's source via directed edges (§3.0.3); each re-emits
        its updated query against the DBMS.
        """
        return [
            self.query_for(v_id)
            for v_id in self.apply_affected(interaction)
        ]

    def apply_affected(self, interaction: Interaction) -> list[str]:
        """Apply an interaction; return the affected visualization ids.

        This is the mutation half of :meth:`apply` — refresh paths use
        the id list to batch the re-emitted queries per interaction.
        """
        kind = interaction.kind
        if kind is InteractionKind.RESET:
            for w_id in self.widget_state:
                self.widget_state[w_id] = None
            for v_id in self.viz_selection:
                self.viz_selection[v_id] = frozenset()
            return sorted(self.visualizations)

        target = interaction.target
        if target is None:
            raise InteractionError(f"{kind.value} requires a target")

        if kind in (
            InteractionKind.WIDGET_TOGGLE,
            InteractionKind.WIDGET_SET,
            InteractionKind.WIDGET_CLEAR,
        ):
            self._apply_widget(kind, target, interaction.value)
        elif kind is InteractionKind.VIZ_SELECT:
            self._apply_viz_select(target, interaction.value)
        elif kind is InteractionKind.VIZ_CLEAR:
            if target not in self.viz_selection:
                raise InteractionError(f"unknown visualization {target!r}")
            self.viz_selection[target] = frozenset()
        else:  # pragma: no cover - enum is exhaustive
            raise InteractionError(f"unhandled interaction kind {kind!r}")

        return list(self.graph.reachable_visualizations(target))

    def _apply_widget(
        self, kind: InteractionKind, widget_id: str, value: object
    ) -> None:
        if widget_id not in self.widgets:
            raise InteractionError(f"unknown widget {widget_id!r}")
        runtime = self.widgets[widget_id]
        current = self.widget_state[widget_id]
        if kind is InteractionKind.WIDGET_CLEAR:
            self.widget_state[widget_id] = None
            return
        if kind is InteractionKind.WIDGET_TOGGLE:
            if not runtime.spec.is_categorical:
                raise InteractionError(
                    f"cannot toggle range widget {widget_id!r}"
                )
            runtime.validate_member(value)
            members = set(current) if isinstance(current, frozenset) else set()
            if value in members:
                members.discard(value)
            else:
                if runtime.is_exclusive:
                    members = set()
                members.add(value)
            self.widget_state[widget_id] = (
                frozenset(members) if members else None
            )
            return
        # WIDGET_SET
        if runtime.spec.is_categorical:
            runtime.validate_member(value)
            self.widget_state[widget_id] = frozenset([value])
            return
        if not isinstance(value, tuple) or len(value) != 2:
            raise InteractionError(
                f"range widget {widget_id!r} requires a (low, high) value"
            )
        low, high = value
        runtime.validate_range(low, high)
        self.widget_state[widget_id] = (low, high)

    def _apply_viz_select(self, viz_id: str, value: object) -> None:
        if viz_id not in self.visualizations:
            raise InteractionError(f"unknown visualization {viz_id!r}")
        runtime = self.visualizations[viz_id]
        if not runtime.spec.selectable:
            raise InteractionError(
                f"visualization {viz_id!r} is not selectable"
            )
        if not isinstance(value, tuple) or len(value) != 2:
            raise InteractionError(
                "mark selection requires a (column, value) pair"
            )
        column, member = value
        valid = runtime.selectable_values()
        if (column, member) not in valid:
            raise InteractionError(
                f"({column!r}, {member!r}) is not selectable in {viz_id!r}"
            )
        pair = (column, member)
        current = self.viz_selection[viz_id]
        if pair in current:
            # Clicking the selected mark deselects it.
            self.viz_selection[viz_id] = frozenset()
        else:
            # Clicking a mark replaces the selection (Tableau-style; the
            # paper's Figure 4 shows each click emitting a single-member
            # filter).
            self.viz_selection[viz_id] = frozenset([pair])

    # -- interface manipulations (§3.0.2) ------------------------------------------

    def add_visualization(
        self,
        viz_spec,
        link_from: tuple[str, ...] = (),
        link_to: tuple[str, ...] = (),
    ) -> list[Query]:
        """Interface manipulation: add a visualization to the dashboard.

        The paper's interaction layer supports *interface manipulations*
        that "modify the original dashboard definition (e.g., to
        add/remove a visualization)". The new visualization is wired
        into the graph (``link_from`` components cross-filter it;
        ``link_to`` components receive its selections) and immediately
        renders, emitting its query.
        """
        from dataclasses import replace

        from repro.dashboard.graph import DashboardGraph
        from repro.dashboard.spec import LinkSpec

        interface = self.spec.interface
        new_links = tuple(
            LinkSpec(source, viz_spec.id) for source in link_from
        ) + tuple(LinkSpec(viz_spec.id, target) for target in link_to)
        new_interface = replace(
            interface,
            visualizations=interface.visualizations + (viz_spec,),
            links=interface.links + new_links,
        )
        new_spec = replace(self.spec, interface=new_interface)
        new_spec.validate()
        self.spec = new_spec
        self.graph = DashboardGraph(new_spec)
        self.visualizations[viz_spec.id] = VisualizationRuntime(
            viz_spec, self.table
        )
        self.viz_selection[viz_spec.id] = frozenset()
        return [self.query_for(viz_spec.id)]

    def remove_visualization(self, viz_id: str) -> list[Query]:
        """Interface manipulation: remove a visualization.

        Widgets targeting the visualization lose that target; a widget
        whose *only* target it was would become inert, so removal is
        refused in that case (delete the widget first).
        """
        from dataclasses import replace

        from repro.dashboard.graph import DashboardGraph

        if viz_id not in self.visualizations:
            raise InteractionError(f"unknown visualization {viz_id!r}")
        interface = self.spec.interface
        for widget in interface.widgets:
            if widget.targets == (viz_id,):
                raise InteractionError(
                    f"widget {widget.id!r} targets only {viz_id!r}; "
                    f"remove the widget first"
                )
        new_widgets = tuple(
            replace(
                w,
                targets=tuple(t for t in w.targets if t != viz_id),
            )
            for w in interface.widgets
        )
        new_interface = replace(
            interface,
            visualizations=tuple(
                v for v in interface.visualizations if v.id != viz_id
            ),
            widgets=new_widgets,
            links=tuple(
                l
                for l in interface.links
                if l.source != viz_id and l.target != viz_id
            ),
        )
        new_spec = replace(self.spec, interface=new_interface)
        new_spec.validate()
        self.spec = new_spec
        self.graph = DashboardGraph(new_spec)
        del self.visualizations[viz_id]
        del self.viz_selection[viz_id]
        return []

    # -- enumeration (the planner's action space) ---------------------------------

    def available_interactions(
        self, max_options: int = MAX_OPTIONS
    ) -> list[Interaction]:
        """Every interaction a user could perform right now.

        One entry per serial manipulation — the paper notes users click
        one checkbox at a time, so each toggle/selection is atomic.
        """
        actions: list[Interaction] = []
        for w_id in sorted(self.widgets):
            runtime = self.widgets[w_id]
            current = self.widget_state[w_id]
            if runtime.spec.is_categorical:
                for option in runtime.options[:max_options]:
                    actions.append(
                        Interaction(
                            InteractionKind.WIDGET_TOGGLE, w_id, option
                        )
                    )
                    # "Select only this member" — one user gesture
                    # (uncheck the rest, check this one) that Figure 4's
                    # per-queue filters correspond to.
                    if (
                        isinstance(current, frozenset)
                        and current
                        and current != frozenset([option])
                    ):
                        actions.append(
                            Interaction(
                                InteractionKind.WIDGET_SET, w_id, option
                            )
                        )
            else:
                for step in runtime.ranges[: max_options * 2]:
                    value = (step.low, step.high)
                    if current == value:
                        continue
                    actions.append(
                        Interaction(InteractionKind.WIDGET_SET, w_id, value)
                    )
            if current is not None:
                actions.append(
                    Interaction(InteractionKind.WIDGET_CLEAR, w_id)
                )
        for v_id in sorted(self.visualizations):
            runtime = self.visualizations[v_id]
            for pair in runtime.selectable_values(max_options):
                actions.append(
                    Interaction(InteractionKind.VIZ_SELECT, v_id, pair)
                )
            if self.viz_selection[v_id]:
                actions.append(Interaction(InteractionKind.VIZ_CLEAR, v_id))
        return actions


def _freeze(value: object) -> object:
    if isinstance(value, frozenset):
        return tuple(sorted(value, key=repr))
    return value
