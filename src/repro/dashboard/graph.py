"""The interaction layer: a directed graph over dashboard components.

Nodes are visualizations and widgets; a directed edge ``source ->
target`` means interacting with the source changes the target (paper
§3.0.2). Edges come from widget ``targets`` lists and explicit
viz-to-viz cross-filter links. Filter propagation follows outbound
edges transitively.
"""

from __future__ import annotations

import networkx as nx

from repro.dashboard.spec import DashboardSpec
from repro.errors import SpecificationError


class DashboardGraph:
    """The joint representation's interaction layer."""

    def __init__(self, spec: DashboardSpec) -> None:
        self.spec = spec
        self.graph = nx.DiGraph()
        for viz in spec.interface.visualizations:
            self.graph.add_node(viz.id, kind="visualization", spec=viz)
        for widget in spec.interface.widgets:
            self.graph.add_node(widget.id, kind="widget", spec=widget)
        for widget in spec.interface.widgets:
            for target in widget.targets:
                self.graph.add_edge(widget.id, target, kind="filter")
        for link in spec.interface.links:
            self.graph.add_edge(link.source, link.target, kind="crossfilter")

    # -- structure queries -----------------------------------------------------

    @property
    def visualization_ids(self) -> list[str]:
        return [
            n
            for n, data in self.graph.nodes(data=True)
            if data["kind"] == "visualization"
        ]

    @property
    def widget_ids(self) -> list[str]:
        return [
            n
            for n, data in self.graph.nodes(data=True)
            if data["kind"] == "widget"
        ]

    def kind(self, node_id: str) -> str:
        if node_id not in self.graph:
            raise SpecificationError(f"unknown component {node_id!r}")
        return self.graph.nodes[node_id]["kind"]

    def reachable_visualizations(self, source_id: str) -> list[str]:
        """Visualizations affected by interacting with ``source_id``.

        This is the recursive filter propagation of §3.0.3: all
        visualization nodes reachable via directed edges from the
        source (excluding the source itself for widgets; a selectable
        visualization does not filter itself either).
        """
        if source_id not in self.graph:
            raise SpecificationError(f"unknown component {source_id!r}")
        reachable = nx.descendants(self.graph, source_id)
        return sorted(
            n
            for n in reachable
            if self.graph.nodes[n]["kind"] == "visualization"
        )

    def influencers(self, viz_id: str) -> list[str]:
        """Components whose state filters ``viz_id`` (reverse reachability)."""
        if viz_id not in self.graph:
            raise SpecificationError(f"unknown component {viz_id!r}")
        return sorted(nx.ancestors(self.graph, viz_id))

    def out_degree_stats(self) -> dict[str, float]:
        """Link-density statistics (used in the Figure 9 analysis)."""
        degrees = [
            len(self.reachable_visualizations(n)) for n in self.widget_ids
        ]
        for viz_id in self.visualization_ids:
            spec = self.graph.nodes[viz_id]["spec"]
            if spec.selectable:
                degrees.append(len(self.reachable_visualizations(viz_id)))
        if not degrees:
            return {"avg": 0.0, "min": 0.0, "max": 0.0}
        return {
            "avg": sum(degrees) / len(degrees),
            "min": float(min(degrees)),
            "max": float(max(degrees)),
        }

    def __repr__(self) -> str:
        return (
            f"DashboardGraph({self.spec.name!r}, "
            f"{len(self.visualization_ids)} visualizations, "
            f"{len(self.widget_ids)} widgets, "
            f"{self.graph.number_of_edges()} edges)"
        )
