"""JSON dashboard specification language (paper §3.0.1).

Three components, mirroring the paper:

- **Database Specification** (inherited from IDEBench): tables and typed
  columns, portable across DBMSs;
- **Interface Specification** (extends IDEBench and Vega-Lite): the
  visualizations and interaction widgets of a complete dashboard and
  how they interconnect;
- **Interaction Specification** (optional): which widget/visualization
  interactions are enabled and any custom parameter domains.

Every spec object round-trips through plain dicts (``to_dict`` /
``from_dict``), so dashboards can be stored as JSON files exactly as the
paper describes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.engine.table import ColumnDef, Schema
from repro.engine.types import DataType
from repro.errors import SpecificationError

#: Visualization types with their mark semantics.
VISUALIZATION_TYPES = frozenset(
    {"bar", "line", "area", "pie", "scatter", "map", "table", "stat"}
)

#: Interaction widget types. Checkboxes/radio produce categorical filters,
#: sliders/brushes produce range filters — the paper notes these pairs
#: share SQL semantics (§2.1).
WIDGET_TYPES = frozenset(
    {"checkbox", "radio", "dropdown", "multiselect", "slider",
     "range_slider", "date_range", "search"}
)

#: Widget types whose filter is a set-membership predicate.
CATEGORICAL_WIDGETS = frozenset(
    {"checkbox", "radio", "dropdown", "multiselect", "search"}
)

#: Widget types whose filter is a range predicate.
RANGE_WIDGETS = frozenset({"slider", "range_slider", "date_range"})

_TYPE_NAMES = {t.value: t for t in DataType}


@dataclass(frozen=True)
class ColumnSpec:
    """One column of the database specification."""

    name: str
    type: str  # DataType value name, e.g. "integer"

    def __post_init__(self) -> None:
        if self.type not in _TYPE_NAMES:
            raise SpecificationError(
                f"column {self.name!r} has unknown type {self.type!r}; "
                f"expected one of {sorted(_TYPE_NAMES)}"
            )

    @property
    def dtype(self) -> DataType:
        return _TYPE_NAMES[self.type]

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.type}

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnSpec":
        return cls(name=data["name"], type=data["type"])


@dataclass(frozen=True)
class DatabaseSpec:
    """Dataset description (IDEBench-style): one denormalized table."""

    table: str
    columns: tuple[ColumnSpec, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SpecificationError(
                f"duplicate columns in database spec: {names}"
            )

    def schema(self) -> Schema:
        return Schema([ColumnDef(c.name, c.dtype) for c in self.columns])

    def column(self, name: str) -> ColumnSpec:
        for column in self.columns:
            if column.name == name:
                return column
        raise SpecificationError(
            f"unknown column {name!r} in table {self.table!r}"
        )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "columns": [c.to_dict() for c in self.columns],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DatabaseSpec":
        return cls(
            table=data["table"],
            columns=tuple(
                ColumnSpec.from_dict(c) for c in data["columns"]
            ),
        )


@dataclass(frozen=True)
class MeasureSpec:
    """One aggregated measure of a visualization: ``agg(column)``."""

    agg: str  # count / sum / avg / min / max
    column: str | None = None  # None means COUNT(*)

    def __post_init__(self) -> None:
        if self.agg.lower() not in {"count", "sum", "avg", "min", "max"}:
            raise SpecificationError(f"unknown aggregation {self.agg!r}")
        object.__setattr__(self, "agg", self.agg.lower())

    def to_dict(self) -> dict:
        return {"agg": self.agg, "column": self.column}

    @classmethod
    def from_dict(cls, data: dict) -> "MeasureSpec":
        return cls(agg=data["agg"], column=data.get("column"))


@dataclass(frozen=True)
class DimensionSpec:
    """One grouping dimension: a column plus optional binning.

    ``bin`` is either a numeric width (quantitative binning) or a
    temporal unit name (``"hour"``, ``"day"``, ``"month"``, ``"year"``).
    """

    column: str
    bin: object | None = None

    def to_dict(self) -> dict:
        return {"column": self.column, "bin": self.bin}

    @classmethod
    def from_dict(cls, data: dict) -> "DimensionSpec":
        return cls(column=data["column"], bin=data.get("bin"))


@dataclass(frozen=True)
class VisualizationSpec:
    """One visualization: type, dimensions, measures, selectability.

    ``selectable`` marks dimensions whose marks the user can click to
    cross-filter linked visualizations (embedded interaction widgets in
    the paper's terms).
    """

    id: str
    type: str
    dimensions: tuple[DimensionSpec, ...] = ()
    measures: tuple[MeasureSpec, ...] = ()
    title: str = ""
    selectable: bool = True

    def __post_init__(self) -> None:
        if self.type not in VISUALIZATION_TYPES:
            raise SpecificationError(
                f"visualization {self.id!r} has unknown type {self.type!r}"
            )
        if not self.dimensions and not self.measures:
            raise SpecificationError(
                f"visualization {self.id!r} needs dimensions or measures"
            )

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "type": self.type,
            "dimensions": [d.to_dict() for d in self.dimensions],
            "measures": [m.to_dict() for m in self.measures],
            "title": self.title,
            "selectable": self.selectable,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VisualizationSpec":
        return cls(
            id=data["id"],
            type=data["type"],
            dimensions=tuple(
                DimensionSpec.from_dict(d)
                for d in data.get("dimensions", [])
            ),
            measures=tuple(
                MeasureSpec.from_dict(m) for m in data.get("measures", [])
            ),
            title=data.get("title", ""),
            selectable=data.get("selectable", True),
        )


@dataclass(frozen=True)
class WidgetSpec:
    """One interaction widget: type, filtered column, link targets.

    ``targets`` lists the visualization (or widget) ids this widget
    filters — each target becomes a directed edge in the interaction
    layer. ``options``/``domain`` may pin the parameter space; when
    absent, parameters are derived from the dataset (distinct values
    for categorical widgets, extents for range widgets).
    """

    id: str
    type: str
    column: str
    targets: tuple[str, ...]
    title: str = ""
    options: tuple[object, ...] | None = None
    domain: tuple[object, object] | None = None

    def __post_init__(self) -> None:
        if self.type not in WIDGET_TYPES:
            raise SpecificationError(
                f"widget {self.id!r} has unknown type {self.type!r}"
            )
        if not self.targets:
            raise SpecificationError(
                f"widget {self.id!r} has no targets; it would be inert"
            )

    @property
    def is_categorical(self) -> bool:
        return self.type in CATEGORICAL_WIDGETS

    @property
    def is_range(self) -> bool:
        return self.type in RANGE_WIDGETS

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "type": self.type,
            "column": self.column,
            "targets": list(self.targets),
            "title": self.title,
            "options": list(self.options) if self.options else None,
            "domain": list(self.domain) if self.domain else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WidgetSpec":
        options = data.get("options")
        domain = data.get("domain")
        return cls(
            id=data["id"],
            type=data["type"],
            column=data["column"],
            targets=tuple(data["targets"]),
            title=data.get("title", ""),
            options=tuple(options) if options else None,
            domain=tuple(domain) if domain else None,
        )


@dataclass(frozen=True)
class LinkSpec:
    """A viz-to-viz cross-filtering link (selecting in source filters target)."""

    source: str
    target: str

    def to_dict(self) -> dict:
        return {"source": self.source, "target": self.target}

    @classmethod
    def from_dict(cls, data: dict) -> "LinkSpec":
        return cls(source=data["source"], target=data["target"])


@dataclass(frozen=True)
class InterfaceSpec:
    """The complete dashboard interface: visualizations, widgets, links."""

    visualizations: tuple[VisualizationSpec, ...]
    widgets: tuple[WidgetSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()

    def __post_init__(self) -> None:
        ids = [v.id for v in self.visualizations] + [
            w.id for w in self.widgets
        ]
        if len(set(ids)) != len(ids):
            raise SpecificationError(f"duplicate component ids: {ids}")

    @property
    def component_ids(self) -> set[str]:
        return {v.id for v in self.visualizations} | {
            w.id for w in self.widgets
        }

    def visualization(self, viz_id: str) -> VisualizationSpec:
        for viz in self.visualizations:
            if viz.id == viz_id:
                return viz
        raise SpecificationError(f"unknown visualization {viz_id!r}")

    def widget(self, widget_id: str) -> WidgetSpec:
        for widget in self.widgets:
            if widget.id == widget_id:
                return widget
        raise SpecificationError(f"unknown widget {widget_id!r}")

    def to_dict(self) -> dict:
        return {
            "visualizations": [v.to_dict() for v in self.visualizations],
            "widgets": [w.to_dict() for w in self.widgets],
            "links": [l.to_dict() for l in self.links],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterfaceSpec":
        return cls(
            visualizations=tuple(
                VisualizationSpec.from_dict(v)
                for v in data.get("visualizations", [])
            ),
            widgets=tuple(
                WidgetSpec.from_dict(w) for w in data.get("widgets", [])
            ),
            links=tuple(
                LinkSpec.from_dict(l) for l in data.get("links", [])
            ),
        )


@dataclass(frozen=True)
class DashboardSpec:
    """A full dashboard: name, type, database, and interface."""

    name: str
    dashboard_type: str  # Sarikaya et al. category
    database: DatabaseSpec
    interface: InterfaceSpec
    description: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Cross-check interface references against the database spec."""
        columns = set(self.database.column_names)
        for viz in self.interface.visualizations:
            for dim in viz.dimensions:
                if dim.column not in columns:
                    raise SpecificationError(
                        f"visualization {viz.id!r} references unknown "
                        f"column {dim.column!r}"
                    )
            for measure in viz.measures:
                if measure.column is not None and measure.column not in columns:
                    raise SpecificationError(
                        f"visualization {viz.id!r} references unknown "
                        f"column {measure.column!r}"
                    )
        component_ids = self.interface.component_ids
        for widget in self.interface.widgets:
            if widget.column not in columns:
                raise SpecificationError(
                    f"widget {widget.id!r} references unknown column "
                    f"{widget.column!r}"
                )
            for target in widget.targets:
                if target not in component_ids:
                    raise SpecificationError(
                        f"widget {widget.id!r} targets unknown component "
                        f"{target!r}"
                    )
        for link in self.interface.links:
            if link.source not in component_ids or link.target not in component_ids:
                raise SpecificationError(
                    f"link {link.source!r} -> {link.target!r} references "
                    f"unknown components"
                )

    # -- statistics used in the evaluation ------------------------------------

    @property
    def num_visualizations(self) -> int:
        return len(self.interface.visualizations)

    @property
    def num_widgets(self) -> int:
        return len(self.interface.widgets)

    def used_columns(self) -> set[str]:
        """All database columns the interface exposes (drives goal-gen)."""
        used: set[str] = set()
        for viz in self.interface.visualizations:
            used.update(d.column for d in viz.dimensions)
            used.update(
                m.column for m in viz.measures if m.column is not None
            )
        used.update(w.column for w in self.interface.widgets)
        return used

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dashboard_type": self.dashboard_type,
            "description": self.description,
            "database": self.database.to_dict(),
            "interface": self.interface.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "DashboardSpec":
        return cls(
            name=data["name"],
            dashboard_type=data.get("dashboard_type", "unspecified"),
            description=data.get("description", ""),
            database=DatabaseSpec.from_dict(data["database"]),
            interface=InterfaceSpec.from_dict(data["interface"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "DashboardSpec":
        return cls.from_dict(json.loads(text))
