"""Runtime semantics of widgets and visualizations.

A :class:`WidgetRuntime` binds a widget spec to the dataset it filters,
deriving its *parameter domain* — the concrete values a simulated user
can pick (checkbox members, slider extents). A
:class:`VisualizationRuntime` does the same for embedded mark selection
(clicking a bar cross-filters linked visualizations).

The paper's observation that interaction types share SQL semantics
(checkboxes ≡ radio buttons -> categorical filters; sliders ≡ brushes ->
range filters, §2.1) is encoded here: all categorical widgets produce
membership filters and all range widgets produce BETWEEN filters.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.dashboard.datalayer import membership_filter, range_filter
from repro.dashboard.spec import VisualizationSpec, WidgetSpec
from repro.engine.table import Table
from repro.errors import InteractionError
from repro.sql.ast import Expression

#: Cap on enumerated categorical options, mirroring real dashboards
#: which page or search beyond this.
MAX_OPTIONS = 24

#: Number of quantile cut points used to discretize range widgets.
RANGE_STEPS = 8


@dataclass(frozen=True)
class RangeStep:
    """One discretized candidate range for a slider/brush widget."""

    low: object
    high: object


class WidgetRuntime:
    """A widget spec bound to its dataset-derived parameter domain."""

    def __init__(self, spec: WidgetSpec, table: Table) -> None:
        self.spec = spec
        self._table = table
        if spec.is_categorical:
            if spec.options is not None:
                self.options: list[object] = list(spec.options)
            else:
                self.options = table.distinct_values(spec.column)[:MAX_OPTIONS]
            self.ranges: list[RangeStep] = []
        else:
            if spec.domain is not None:
                low, high = spec.domain
            else:
                low, high = table.column_extent(spec.column)
            self.options = []
            self.ranges = _discretize_range(low, high)

    @property
    def id(self) -> str:
        return self.spec.id

    @property
    def is_exclusive(self) -> bool:
        """Radio buttons and dropdowns hold at most one selection."""
        return self.spec.type in ("radio", "dropdown")

    def filter_for(self, state: object) -> Expression | None:
        """Translate widget state into a SQL filter (None = inactive)."""
        if state is None:
            return None
        if self.spec.is_categorical:
            members = sorted(state, key=repr) if isinstance(state, frozenset) else [state]
            if not members:
                return None
            if set(members) >= set(self.options) and self.options:
                # Selecting everything is the same as no filter.
                return None
            return membership_filter(self.spec.column, members)
        low, high = state  # type: ignore[misc]
        return range_filter(self.spec.column, low, high)

    def validate_member(self, member: object) -> None:
        if member not in self.options:
            raise InteractionError(
                f"{member!r} is not an option of widget {self.id!r}; "
                f"options: {self.options[:8]}..."
            )

    def validate_range(self, low: object, high: object) -> None:
        try:
            inverted = low > high  # type: ignore[operator]
        except TypeError as exc:
            raise InteractionError(
                f"range endpoints {low!r}..{high!r} are not comparable"
            ) from exc
        if inverted:
            raise InteractionError(
                f"inverted range {low!r}..{high!r} on widget {self.id!r}"
            )


class VisualizationRuntime:
    """A visualization spec bound to its selectable mark values."""

    def __init__(self, spec: VisualizationSpec, table: Table) -> None:
        self.spec = spec
        self._table = table

    @property
    def id(self) -> str:
        return self.spec.id

    def selectable_values(
        self, max_options: int = MAX_OPTIONS
    ) -> list[tuple[str, object]]:
        """(column, value) pairs a user could click on this visualization.

        Only unbinned categorical dimensions are selectable — clicking a
        bar or pie slice selects one member of the dimension.
        """
        if not self.spec.selectable:
            return []
        pairs: list[tuple[str, object]] = []
        for dim in self.spec.dimensions:
            if dim.bin is not None:
                continue
            dtype = self._table.schema.dtype(dim.column)
            if not dtype.is_categorical:
                continue
            for value in self._table.distinct_values(dim.column)[:max_options]:
                pairs.append((dim.column, value))
        return pairs

    def filter_for_selection(
        self, selections: frozenset[tuple[str, object]]
    ) -> list[Expression]:
        """Translate mark selections into SQL filters, one per column."""
        by_column: dict[str, list[object]] = {}
        for column, value in selections:
            by_column.setdefault(column, []).append(value)
        return [
            membership_filter(column, values)
            for column, values in sorted(by_column.items())
        ]


def _discretize_range(low: object, high: object) -> list[RangeStep]:
    """Candidate sub-ranges between ``low`` and ``high``.

    Users drag sliders to coarse positions, not arbitrary reals; we
    discretize the domain into RANGE_STEPS cut points and enumerate the
    contiguous sub-ranges between them (like IDEBench's quantized brush
    positions).
    """
    if low is None or high is None:
        return []
    cuts = _cut_points(low, high)
    steps: list[RangeStep] = []
    for i in range(len(cuts) - 1):
        for j in range(i + 1, len(cuts)):
            steps.append(RangeStep(cuts[i], cuts[j]))
    return steps


def _cut_points(low: object, high: object) -> list[object]:
    if isinstance(low, bool) or isinstance(high, bool):
        return [low, high]
    if isinstance(low, (int, float)) and isinstance(high, (int, float)):
        if low == high:
            return [low, high]
        span = float(high) - float(low)
        points = [
            float(low) + span * i / RANGE_STEPS for i in range(RANGE_STEPS + 1)
        ]
        if isinstance(low, int) and isinstance(high, int) and span >= RANGE_STEPS:
            return [int(round(p)) for p in points]
        return [round(p, 6) for p in points]
    if isinstance(low, _dt.datetime) and isinstance(high, _dt.datetime):
        span = (high - low) / RANGE_STEPS
        return [low + span * i for i in range(RANGE_STEPS + 1)]
    if isinstance(low, _dt.date) and isinstance(high, _dt.date):
        total_days = (high - low).days
        if total_days <= 0:
            return [low, high]
        step = max(1, total_days // RANGE_STEPS)
        points: list[object] = [
            low + _dt.timedelta(days=i * step)
            for i in range(RANGE_STEPS)
        ]
        points.append(high)
        # Deduplicate while preserving order (small domains collapse).
        unique: list[object] = []
        for point in points:
            if not unique or point != unique[-1]:
                unique.append(point)
        return unique
    return [low, high]
