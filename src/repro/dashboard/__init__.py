"""Dashboard specification language and joint graph representation (§3).

- :mod:`repro.dashboard.spec` — JSON Database/Interface specifications
  (merging IDEBench, Polaris/VizQL, and Vega-Lite formats);
- :mod:`repro.dashboard.components` — visualization and interaction
  widget semantics;
- :mod:`repro.dashboard.graph` — the interaction-layer graph;
- :mod:`repro.dashboard.state` — dashboard state and filter propagation;
- :mod:`repro.dashboard.datalayer` — node -> SQL query generation;
- :mod:`repro.dashboard.library` — the six paper dashboards.
"""

from repro.dashboard.graph import DashboardGraph
from repro.dashboard.spec import (
    ColumnSpec,
    DashboardSpec,
    DatabaseSpec,
    InterfaceSpec,
    VisualizationSpec,
    WidgetSpec,
)
from repro.dashboard.state import DashboardState, Interaction, InteractionKind

__all__ = [
    "ColumnSpec",
    "DashboardGraph",
    "DashboardSpec",
    "DashboardState",
    "DatabaseSpec",
    "Interaction",
    "InteractionKind",
    "InterfaceSpec",
    "VisualizationSpec",
    "WidgetSpec",
]
