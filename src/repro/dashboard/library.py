"""The six real-world dashboards of the paper's evaluation (Figure 6).

Each specification is reconstructed from the paper's descriptions:
component counts and wiring follow §6.1/§6.3 (e.g. Customer Service has
five visualizations that filter each other plus four interaction
widgets; Circulation Activity and MyRide have two visualizations each;
IT Monitor has three). Column-role counts match Figure 6's (Q, C)
annotations via the matching generators in
:mod:`repro.workload.datasets`.

Dashboard types follow Sarikaya et al.'s categories, as in the paper.
"""

from __future__ import annotations

from repro.dashboard.spec import (
    ColumnSpec,
    DashboardSpec,
    DatabaseSpec,
    DimensionSpec,
    InterfaceSpec,
    LinkSpec,
    MeasureSpec,
    VisualizationSpec,
    WidgetSpec,
)
from repro.engine.table import Schema
from repro.errors import ConfigError
from repro.workload.datasets import dataset_schema


def _database_spec(table: str, schema: Schema) -> DatabaseSpec:
    return DatabaseSpec(
        table=table,
        columns=tuple(
            ColumnSpec(c.name, c.dtype.value) for c in schema.columns
        ),
    )


def _all_to_all_links(viz_ids: list[str]) -> tuple[LinkSpec, ...]:
    """Cross-filter links between every ordered pair of visualizations."""
    return tuple(
        LinkSpec(source, target)
        for source in viz_ids
        for target in viz_ids
        if source != target
    )


# ---------------------------------------------------------------------------
# Customer Service (Figure 1/2; operational decision making; 10Q, 6C)
# ---------------------------------------------------------------------------


def customer_service_dashboard() -> DashboardSpec:
    """The paper's running example: call-center monitoring.

    Five linked visualizations (Figure 2D) and four interaction widgets;
    the abandon-rate stat emits SUM(abandoned) and COUNT(calls), the two
    aggregates of Figure 2B's ratio.
    """
    schema = dataset_schema("customer_service")
    viz_ids = [
        "calls_per_rep",
        "total_calls_by_hour",
        "abandon_rate",
        "lost_calls",
        "calls_by_queue",
    ]
    visualizations = (
        VisualizationSpec(
            id="calls_per_rep",
            type="bar",
            title="Calls per Rep",
            dimensions=(
                DimensionSpec("repID"),
                DimensionSpec("hour"),
                DimensionSpec("callDirection"),
            ),
            measures=(MeasureSpec("count", "calls"),),
        ),
        VisualizationSpec(
            id="total_calls_by_hour",
            type="line",
            title="Total Calls by Hour",
            dimensions=(
                DimensionSpec("queue"),
                DimensionSpec("hour"),
                DimensionSpec("callDirection"),
            ),
            measures=(MeasureSpec("count", "calls"),),
        ),
        VisualizationSpec(
            id="abandon_rate",
            type="stat",
            title="Abandon Rate",
            measures=(
                MeasureSpec("sum", "abandoned"),
                MeasureSpec("count", "calls"),
            ),
            selectable=False,
        ),
        VisualizationSpec(
            id="lost_calls",
            type="stat",
            title="Lost Calls",
            measures=(MeasureSpec("count", "lostCalls"),),
            selectable=False,
        ),
        VisualizationSpec(
            id="calls_by_queue",
            type="pie",
            title="Calls per Queue",
            dimensions=(DimensionSpec("repID"),),
            measures=(MeasureSpec("count", "calls"),),
        ),
    )
    widgets = (
        WidgetSpec(
            id="queue_checkbox",
            type="checkbox",
            column="queue",
            targets=tuple(viz_ids),
            title="Queue",
        ),
        WidgetSpec(
            id="direction_radio",
            type="radio",
            column="callDirection",
            targets=tuple(viz_ids),
            title="Call Direction",
        ),
        WidgetSpec(
            id="hour_slider",
            type="range_slider",
            column="hour",
            targets=tuple(viz_ids),
            title="Hour of Day",
            domain=(0, 23),
        ),
        WidgetSpec(
            id="day_dropdown",
            type="dropdown",
            column="dayOfWeek",
            targets=tuple(viz_ids),
            title="Day of Week",
        ),
    )
    return DashboardSpec(
        name="customer_service",
        dashboard_type="operational decision making",
        description="Call-center performance monitoring (paper Figure 1).",
        database=_database_spec("customer_service", schema),
        interface=InterfaceSpec(
            visualizations=visualizations,
            widgets=widgets,
            links=_all_to_all_links(
                ["calls_per_rep", "total_calls_by_hour", "calls_by_queue"]
            )
            + (
                LinkSpec("calls_per_rep", "abandon_rate"),
                LinkSpec("calls_per_rep", "lost_calls"),
                LinkSpec("total_calls_by_hour", "abandon_rate"),
                LinkSpec("total_calls_by_hour", "lost_calls"),
                LinkSpec("calls_by_queue", "abandon_rate"),
                LinkSpec("calls_by_queue", "lost_calls"),
            ),
        ),
    )


# ---------------------------------------------------------------------------
# Circulation Activity by Library (strategic; 2Q, 2C; two visualizations)
# ---------------------------------------------------------------------------


def circulation_dashboard() -> DashboardSpec:
    """Library circulation: two near-identical branch-level views."""
    schema = dataset_schema("circulation")
    visualizations = (
        VisualizationSpec(
            id="checkouts_by_branch",
            type="bar",
            title="Checkouts by Branch",
            dimensions=(DimensionSpec("branch"),),
            measures=(MeasureSpec("sum", "checkouts"),),
        ),
        VisualizationSpec(
            id="renewals_by_branch",
            type="bar",
            title="Renewals by Branch",
            dimensions=(DimensionSpec("branch"),),
            measures=(MeasureSpec("sum", "renewals"),),
        ),
    )
    widgets = (
        WidgetSpec(
            id="date_range",
            type="date_range",
            column="checkout_date",
            targets=("checkouts_by_branch", "renewals_by_branch"),
            title="Date Range",
        ),
        WidgetSpec(
            id="branch_dropdown",
            type="dropdown",
            column="branch",
            targets=("checkouts_by_branch", "renewals_by_branch"),
            title="Branch",
        ),
    )
    return DashboardSpec(
        name="circulation",
        dashboard_type="strategic decision making",
        description="Circulation events system-wide and per branch.",
        database=_database_spec("circulation", schema),
        interface=InterfaceSpec(
            visualizations=visualizations,
            widgets=widgets,
            links=_all_to_all_links(
                ["checkouts_by_branch", "renewals_by_branch"]
            ),
        ),
    )


# ---------------------------------------------------------------------------
# Supply Chain (strategic; 5Q, 18C)
# ---------------------------------------------------------------------------


def supply_chain_dashboard() -> DashboardSpec:
    """Order logistics: products, shipping duration/modes/costs."""
    schema = dataset_schema("supply_chain")
    viz_ids = [
        "sales_by_category",
        "profit_by_region",
        "sales_over_time",
        "quantity_by_ship_mode",
        "shipping_by_carrier",
        "total_profit",
    ]
    visualizations = (
        VisualizationSpec(
            id="sales_by_category",
            type="bar",
            title="Sales by Category",
            dimensions=(
                DimensionSpec("category"),
                DimensionSpec("subcategory"),
            ),
            measures=(MeasureSpec("sum", "sales"),),
        ),
        VisualizationSpec(
            id="profit_by_region",
            type="bar",
            title="Profit by Region",
            dimensions=(DimensionSpec("region"),),
            measures=(
                MeasureSpec("sum", "profit"),
                MeasureSpec("avg", "discount"),
            ),
        ),
        VisualizationSpec(
            id="sales_over_time",
            type="line",
            title="Monthly Sales",
            dimensions=(DimensionSpec("order_date", bin="month"),),
            measures=(MeasureSpec("sum", "sales"),),
            selectable=False,
        ),
        VisualizationSpec(
            id="quantity_by_ship_mode",
            type="pie",
            title="Quantity by Ship Mode",
            dimensions=(DimensionSpec("ship_mode"),),
            measures=(MeasureSpec("sum", "quantity"),),
        ),
        VisualizationSpec(
            id="shipping_by_carrier",
            type="bar",
            title="Shipping Cost by Carrier",
            dimensions=(DimensionSpec("carrier"),),
            measures=(
                MeasureSpec("avg", "shipping_cost"),
                MeasureSpec("count", None),
            ),
        ),
        VisualizationSpec(
            id="total_profit",
            type="stat",
            title="Total Profit",
            measures=(MeasureSpec("sum", "profit"),),
            selectable=False,
        ),
    )
    widgets = (
        WidgetSpec(
            id="region_dropdown", type="dropdown", column="region",
            targets=tuple(viz_ids), title="Region",
        ),
        WidgetSpec(
            id="segment_radio", type="radio", column="segment",
            targets=tuple(viz_ids), title="Segment",
        ),
        WidgetSpec(
            id="category_checkbox", type="checkbox", column="category",
            targets=tuple(viz_ids), title="Category",
        ),
        WidgetSpec(
            id="priority_dropdown", type="dropdown", column="order_priority",
            targets=tuple(viz_ids), title="Priority",
        ),
        WidgetSpec(
            id="discount_slider", type="range_slider", column="discount",
            targets=tuple(viz_ids), title="Discount", domain=(0.0, 0.3),
        ),
        WidgetSpec(
            id="tier_dropdown", type="dropdown", column="customer_tier",
            targets=tuple(viz_ids), title="Customer Tier",
        ),
    )
    return DashboardSpec(
        name="supply_chain",
        dashboard_type="strategic decision making",
        description="Strategic evaluation of order logistics.",
        database=_database_spec("supply_chain", schema),
        interface=InterfaceSpec(
            visualizations=visualizations,
            widgets=widgets,
            links=_all_to_all_links(
                [
                    "sales_by_category",
                    "profit_by_region",
                    "quantity_by_ship_mode",
                    "shipping_by_carrier",
                ]
            )
            + tuple(
                LinkSpec(source, target)
                for source in (
                    "sales_by_category",
                    "profit_by_region",
                    "quantity_by_ship_mode",
                    "shipping_by_carrier",
                )
                for target in ("total_profit", "sales_over_time")
            ),
        ),
    )


# ---------------------------------------------------------------------------
# UBC Energy Map (strategic; 22Q, 4C)
# ---------------------------------------------------------------------------


def ubc_energy_dashboard() -> DashboardSpec:
    """Campus energy usage aggregated per building and energy type."""
    schema = dataset_schema("ubc_energy")
    viz_ids = [
        "usage_map",
        "usage_by_type",
        "emissions_by_zone",
        "usage_over_time",
        "peak_demand",
    ]
    visualizations = (
        VisualizationSpec(
            id="usage_over_time",
            type="line",
            title="Monthly Usage",
            dimensions=(DimensionSpec("reading_date", bin="month"),),
            measures=(MeasureSpec("sum", "annual_usage"),),
            selectable=False,
        ),
        VisualizationSpec(
            id="usage_map",
            type="map",
            title="Energy Use per Building",
            dimensions=(DimensionSpec("building"),),
            measures=(
                MeasureSpec("sum", "annual_usage"),
                MeasureSpec("avg", "efficiency_score"),
            ),
        ),
        VisualizationSpec(
            id="usage_by_type",
            type="bar",
            title="Usage by Energy Type",
            dimensions=(DimensionSpec("energy_type"),),
            measures=(
                MeasureSpec("sum", "annual_usage"),
                MeasureSpec("sum", "energy_cost"),
            ),
        ),
        VisualizationSpec(
            id="emissions_by_zone",
            type="bar",
            title="Emissions by Zone",
            dimensions=(DimensionSpec("zone"),),
            measures=(MeasureSpec("sum", "emissions"),),
        ),
        VisualizationSpec(
            id="peak_demand",
            type="stat",
            title="Peak Demand",
            measures=(
                MeasureSpec("max", "peak_demand"),
                MeasureSpec("sum", "annual_usage"),
            ),
            selectable=False,
        ),
    )
    widgets = (
        WidgetSpec(
            id="building_dropdown", type="dropdown", column="building",
            targets=tuple(viz_ids), title="Building",
        ),
        WidgetSpec(
            id="type_checkbox", type="checkbox", column="energy_type",
            targets=tuple(viz_ids), title="Energy Type",
        ),
        WidgetSpec(
            id="zone_radio", type="radio", column="zone",
            targets=tuple(viz_ids), title="Zone",
        ),
        WidgetSpec(
            id="efficiency_slider", type="range_slider",
            column="efficiency_score",
            targets=tuple(viz_ids), title="Efficiency", domain=(0.0, 100.0),
        ),
    )
    return DashboardSpec(
        name="ubc_energy",
        dashboard_type="strategic decision making",
        description="Aggregated campus energy usage (UBC Energy Map).",
        database=_database_spec("ubc_energy", schema),
        interface=InterfaceSpec(
            visualizations=visualizations,
            widgets=widgets,
            links=_all_to_all_links(
                ["usage_map", "usage_by_type", "emissions_by_zone"]
            )
            + (
                LinkSpec("usage_map", "peak_demand"),
                LinkSpec("usage_by_type", "peak_demand"),
            ),
        ),
    )


# ---------------------------------------------------------------------------
# MyRide (quantified self; 10Q, 3C; two visualizations)
# ---------------------------------------------------------------------------


def myride_dashboard() -> DashboardSpec:
    """Heart-rate along a cycling route; exposes a single quantitative
    column (heart_rate), which is why the paper found it incompatible
    with the correlation-heavy Battle & Heer and Crossfilter workflows.
    """
    schema = dataset_schema("myride")
    visualizations = (
        VisualizationSpec(
            id="heart_rate_over_time",
            type="line",
            title="Heart Rate over Time",
            dimensions=(DimensionSpec("ts", bin="hour"),),
            measures=(MeasureSpec("avg", "heart_rate"),),
            selectable=False,
        ),
        VisualizationSpec(
            id="route_map",
            type="map",
            title="Route",
            dimensions=(DimensionSpec("segment"),),
            measures=(MeasureSpec("avg", "heart_rate"),),
        ),
    )
    widgets = (
        WidgetSpec(
            id="zone_checkbox", type="checkbox", column="zone",
            targets=("heart_rate_over_time", "route_map"), title="HR Zone",
        ),
        WidgetSpec(
            id="surface_radio", type="radio", column="surface",
            targets=("heart_rate_over_time", "route_map"), title="Surface",
        ),
        WidgetSpec(
            id="time_brush", type="date_range", column="ts",
            targets=("heart_rate_over_time", "route_map"), title="Time",
        ),
    )
    return DashboardSpec(
        name="myride",
        dashboard_type="quantified self",
        description="Heart rate along a cycling route in Orlando, FL.",
        database=_database_spec("myride", schema),
        interface=InterfaceSpec(
            visualizations=visualizations,
            widgets=widgets,
            links=(LinkSpec("route_map", "heart_rate_over_time"),),
        ),
    )


# ---------------------------------------------------------------------------
# IT Monitor (operational; 3Q, 5C; three visualizations)
# ---------------------------------------------------------------------------


def it_monitor_dashboard() -> DashboardSpec:
    """System telemetry supporting anomaly drill-down."""
    schema = dataset_schema("it_monitor")
    viz_ids = ["cpu_over_time", "alerts_by_severity", "host_table"]
    visualizations = (
        VisualizationSpec(
            id="cpu_over_time",
            type="line",
            title="CPU over Time",
            dimensions=(DimensionSpec("ts", bin="hour"),),
            measures=(
                MeasureSpec("avg", "cpu"),
                MeasureSpec("avg", "memory"),
            ),
            selectable=False,
        ),
        VisualizationSpec(
            id="alerts_by_severity",
            type="bar",
            title="Events by Severity",
            dimensions=(DimensionSpec("severity"),),
            measures=(MeasureSpec("count", None),),
        ),
        VisualizationSpec(
            id="host_table",
            type="table",
            title="Hosts",
            dimensions=(DimensionSpec("host"),),
            measures=(
                MeasureSpec("avg", "latency"),
                MeasureSpec("max", "cpu"),
                MeasureSpec("count", None),
            ),
        ),
    )
    widgets = (
        WidgetSpec(
            id="datacenter_dropdown", type="dropdown", column="datacenter",
            targets=tuple(viz_ids), title="Datacenter",
        ),
        WidgetSpec(
            id="service_checkbox", type="checkbox", column="service",
            targets=tuple(viz_ids), title="Service",
        ),
        WidgetSpec(
            id="severity_radio", type="radio", column="severity",
            targets=tuple(viz_ids), title="Severity",
        ),
        WidgetSpec(
            id="status_dropdown", type="dropdown", column="status",
            targets=tuple(viz_ids), title="Status",
        ),
        WidgetSpec(
            id="latency_slider", type="range_slider", column="latency",
            targets=tuple(viz_ids), title="Latency",
        ),
    )
    return DashboardSpec(
        name="it_monitor",
        dashboard_type="operational decision making",
        description="IT telemetry with anomaly drill-down.",
        database=_database_spec("it_monitor", schema),
        interface=InterfaceSpec(
            visualizations=visualizations,
            widgets=widgets,
            links=_all_to_all_links(["alerts_by_severity", "host_table"])
            + (
                LinkSpec("alerts_by_severity", "cpu_over_time"),
                LinkSpec("host_table", "cpu_over_time"),
            ),
        ),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BUILDERS = {
    "circulation": circulation_dashboard,
    "supply_chain": supply_chain_dashboard,
    "ubc_energy": ubc_energy_dashboard,
    "myride": myride_dashboard,
    "it_monitor": it_monitor_dashboard,
    "customer_service": customer_service_dashboard,
}

#: The six dashboards of Figure 6, by name.
DASHBOARD_NAMES = sorted(_BUILDERS)


def load_dashboard(name: str) -> DashboardSpec:
    """Build one of the six paper dashboards by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown dashboard {name!r}; available: {DASHBOARD_NAMES}"
        ) from None


def load_dashboard_json(name: str) -> DashboardSpec:
    """Load one of the six dashboards from its shipped JSON spec file.

    The JSON files under ``repro/dashboard/specs/`` are the canonical
    developer-facing artifacts (the paper's input format); this loader
    demonstrates the file-based workflow. ``load_dashboard`` builds the
    same specs programmatically.
    """
    import pathlib

    path = pathlib.Path(__file__).parent / "specs" / f"{name}.json"
    if not path.exists():
        raise ConfigError(
            f"no JSON spec for dashboard {name!r}; available: "
            f"{DASHBOARD_NAMES}"
        )
    return DashboardSpec.from_json(path.read_text())


def all_dashboards() -> dict[str, DashboardSpec]:
    """All six dashboards keyed by name."""
    return {name: load_dashboard(name) for name in DASHBOARD_NAMES}
