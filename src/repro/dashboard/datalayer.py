"""The data layer: dashboard nodes -> SQL queries (paper §3.0.3).

Each visualization node corresponds to one SQL query. The base query is
derived from the visualization's dimensions and measures; active filters
(from widgets and cross-filtering selections, delivered by the state's
propagation pass) are AND-ed into the WHERE clause.

A dashboard *refresh* — the initial render, or the fan-out after an
interaction — is represented by :class:`RefreshPlan`: the ordered set
of component queries, executable either sequentially or through the
shared-scan batch optimizer (:mod:`repro.engine.batch`). Because every
component queries the same table and shares the same AND-ed filters,
batch mode collapses the refresh into a handful of shared scans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.interface import Engine, QueryResult
from repro.dashboard.spec import (
    DashboardSpec,
    DimensionSpec,
    MeasureSpec,
    VisualizationSpec,
)
from repro.engine.types import DataType
from repro.errors import SpecificationError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)

_AGG_SQL = {"count": "COUNT", "sum": "SUM", "avg": "AVG", "min": "MIN", "max": "MAX"}
_TEMPORAL_UNITS = {"year": "YEAR", "month": "MONTH", "day": "DAY", "hour": "HOUR"}


def dimension_expression(
    dim: DimensionSpec, spec: DashboardSpec
) -> Expression:
    """SQL grouping expression for a dimension (column, bin, or unit)."""
    column = Column(dim.column)
    if dim.bin is None:
        return column
    dtype = spec.database.column(dim.column).dtype
    if isinstance(dim.bin, str):
        unit = dim.bin.lower()
        if unit not in _TEMPORAL_UNITS:
            raise SpecificationError(
                f"unknown temporal bin unit {dim.bin!r} on {dim.column!r}"
            )
        if not dtype.is_temporal:
            raise SpecificationError(
                f"temporal bin on non-temporal column {dim.column!r}"
            )
        return FuncCall(_TEMPORAL_UNITS[unit], (column,))
    if not isinstance(dim.bin, (int, float)) or dim.bin <= 0:
        raise SpecificationError(
            f"bin width on {dim.column!r} must be a positive number"
        )
    if not dtype.is_numeric:
        raise SpecificationError(
            f"numeric bin on non-numeric column {dim.column!r}"
        )
    return FuncCall("BIN", (column, Literal(dim.bin)))


def measure_expression(measure: MeasureSpec) -> Expression:
    """SQL aggregate expression for a measure."""
    if measure.column is None:
        if measure.agg != "count":
            raise SpecificationError(
                f"measure {measure.agg!r} requires a column"
            )
        return FuncCall("COUNT", (Star(),))
    return FuncCall(_AGG_SQL[measure.agg], (Column(measure.column),))


def measure_alias(measure: MeasureSpec) -> str:
    if measure.column is None:
        return "count_all"
    return f"{measure.agg}_{measure.column}"


def dimension_alias(dim: DimensionSpec) -> str | None:
    if dim.bin is None:
        return None
    if isinstance(dim.bin, str):
        return f"{dim.bin}_{dim.column}"
    return f"bin_{dim.column}"


def base_query(viz: VisualizationSpec, spec: DashboardSpec) -> Query:
    """The visualization's query with no active filters."""
    select: list[SelectItem] = []
    group_by: list[Expression] = []
    for dim in viz.dimensions:
        expr = dimension_expression(dim, spec)
        select.append(SelectItem(expr, dimension_alias(dim)))
        group_by.append(expr)
    has_measures = bool(viz.measures)
    for measure in viz.measures:
        select.append(
            SelectItem(measure_expression(measure), measure_alias(measure))
        )
    if not select:
        raise SpecificationError(
            f"visualization {viz.id!r} produces an empty query"
        )
    return Query(
        select=tuple(select),
        from_table=TableRef(spec.database.table),
        group_by=tuple(group_by) if has_measures else (),
    )


def filtered_query(
    viz: VisualizationSpec,
    spec: DashboardSpec,
    filters: list[Expression],
) -> Query:
    """The visualization's query with active filters AND-ed in.

    Filters are sorted by canonical text so the emitted SQL is stable
    regardless of the order widgets were touched — this keeps query
    logs deterministic and cache-friendly.
    """
    query = base_query(viz, spec)
    if not filters:
        return query
    from repro.sql.formatter import format_expression

    ordered = sorted(filters, key=format_expression)
    predicate = ordered[0]
    for expr in ordered[1:]:
        predicate = BinaryOp("AND", predicate, expr)
    return query.with_where(predicate)


@dataclass
class RefreshPlan:
    """One dashboard refresh: the ordered fan-out of component queries.

    This is the unit the batch executor consumes — the full set of
    queries a render or interaction re-emits, positionally aligned with
    the visualization ids they feed.
    """

    viz_ids: list[str]
    queries: list[Query]

    def __len__(self) -> int:
        return len(self.queries)

    def execute(
        self, engine: Engine, policy=None, *, batch: bool | None = None,
        workers: int | None = None, shards: int | None = None,
        multiplan: bool | None = None,
    ) -> dict[str, QueryResult]:
        """Run the refresh; returns timed results keyed by viz id.

        ``policy`` (an :class:`~repro.execution.ExecutionPolicy` or
        preset name) picks the strategy; the default routes through
        :meth:`Engine.execute_batch` (shared scans) on one worker. A
        ``batch=False`` policy executes each component query
        independently; ``workers > 1`` overlaps the refresh's
        independent units (scan groups in batch mode, single queries
        otherwise); ``shards``/``multiplan`` split and combine scan
        groups (:mod:`repro.sharding`, :mod:`repro.engine.multiplan`).
        All policies produce identical result sets. The per-knob
        keywords are deprecated and map onto the equivalent policy.
        """
        from repro.execution import ExecutionPolicy, resolve_policy

        policy = resolve_policy(
            policy,
            api="RefreshPlan.execute",
            default=ExecutionPolicy(),
            batch=batch,
            workers=workers,
            shards=shards,
            multiplan=multiplan,
        )
        # The engine dispatches every policy, including the sequential
        # (batch=False) path — one implementation, not a copy per layer.
        timed = engine.execute_batch(self.queries, policy)
        return dict(zip(self.viz_ids, timed))


def build_refresh(state, viz_ids=None) -> RefreshPlan:
    """The refresh plan for a dashboard state (all or selected nodes).

    ``state`` is a :class:`~repro.dashboard.state.DashboardState`
    (duck-typed to avoid a circular import — the state module builds
    its queries through this data layer).
    """
    if viz_ids is None:
        viz_ids = sorted(state.visualizations)
    else:
        viz_ids = list(viz_ids)
    return RefreshPlan(viz_ids, [state.query_for(v) for v in viz_ids])


def membership_filter(column: str, members: list[object]) -> Expression:
    """Categorical widget filter: ``column IN (members)``."""
    if not members:
        raise SpecificationError("membership filter needs at least one member")
    ordered = sorted(members, key=repr)
    return InList(
        Column(column),
        tuple(Literal(m) for m in ordered),  # type: ignore[arg-type]
    )


def range_filter(column: str, low: object, high: object) -> Expression:
    """Range widget filter: ``column BETWEEN low AND high``."""
    return Between(Column(column), Literal(low), Literal(high))  # type: ignore[arg-type]
