"""Benchmark workflows: ordered goal-template sequences (paper §6.2.3).

The paper derives three workflows from the literature and uses them as
the goal orderings driving its simulations (Table 3):

- **Shneiderman** — "overview first, zoom and filter, then
  details-on-demand": an overview goal, then a filtering goal, then an
  identification goal. Contains no correlation goal, which is why it is
  the only workflow compatible with the MyRide dashboard.
- **Battle & Heer** — the exploration profile observed in their Tableau
  study: characterize a distribution, test a correlation, then compare
  groups.
- **Crossfilter (Battle et al.)** — the rapid cross-filtering profile of
  the Crossfilter benchmark: temporal pattern first, correlation, then
  threshold filtering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algebra.templates import (
    GOAL_TEMPLATES,
    TemplateParameterError,
    get_template,
)
from repro.algebra.translate import GoalQuery
from repro.dashboard.spec import DashboardSpec
from repro.engine.table import Schema
from repro.errors import ConfigError, GoalError


class WorkflowNotApplicable(GoalError):
    """Raised when a dashboard cannot support a workflow's goals.

    Mirrors the paper's finding that MyRide is incompatible with the
    Battle & Heer and Crossfilter workflows (too few quantitative
    columns exposed for correlation goals).
    """


@dataclass(frozen=True)
class Workflow:
    """An ordered sequence of goal templates."""

    name: str
    citation: str
    template_names: tuple[str, ...]

    def __post_init__(self) -> None:
        for template_name in self.template_names:
            if template_name not in GOAL_TEMPLATES:
                raise ConfigError(
                    f"workflow {self.name!r} references unknown template "
                    f"{template_name!r}"
                )

    def is_applicable(
        self, schema: Schema, usable_columns: set[str] | None = None
    ) -> bool:
        """Whether every template's requirements are satisfiable."""
        try:
            self.instantiate(
                "probe", schema, random.Random(0), usable_columns
            )
        except WorkflowNotApplicable:
            return False
        return True

    def instantiate(
        self,
        table: str,
        schema: Schema,
        rng: random.Random | None = None,
        usable_columns: set[str] | None = None,
    ) -> list[GoalQuery]:
        """Produce the ordered goal set for one dashboard/dataset.

        Each template is instantiated against the schema restricted to
        the columns the dashboard actually exposes, so goals are
        expressible through the dashboard's interaction space.
        """
        rng = rng or random.Random(0)
        goals: list[GoalQuery] = []
        for template_name in self.template_names:
            template = get_template(template_name)
            try:
                goal = template.instantiate_for_schema(
                    table, schema, rng, usable_columns
                )
            except TemplateParameterError as exc:
                raise WorkflowNotApplicable(
                    f"workflow {self.name!r} cannot run: {exc}"
                ) from exc
            goals.append(goal)
        return goals

    def instantiate_for_dashboard(
        self,
        spec: DashboardSpec,
        rng: random.Random | None = None,
    ) -> list[GoalQuery]:
        """Instantiate against a dashboard's *capabilities*.

        Uses :mod:`repro.simulation.goalgen` so every goal is achievable
        through the dashboard's interaction space (the paper's
        "dashboards constrain the range of exploration goals" insight).
        """
        from repro.simulation.goalgen import generate_goal_set

        try:
            return generate_goal_set(
                self.template_names, spec, rng or random.Random(0)
            )
        except TemplateParameterError as exc:
            raise WorkflowNotApplicable(
                f"workflow {self.name!r} cannot run on dashboard "
                f"{spec.name!r}: {exc}"
            ) from exc

    def is_applicable_to_dashboard(self, spec: DashboardSpec) -> bool:
        """Whether this workflow's goals can target ``spec`` at all."""
        try:
            self.instantiate_for_dashboard(spec, random.Random(0))
        except WorkflowNotApplicable:
            return False
        return True


#: The three workflows of Table 3.
WORKFLOWS: dict[str, Workflow] = {
    "shneiderman": Workflow(
        name="shneiderman",
        citation="Shneiderman, The Eyes Have It (1996)",
        template_names=(
            "measuring_differences",  # overview: compare groups
            "filtering",              # zoom and filter
            "identification",         # details on demand
        ),
    ),
    "battle_heer": Workflow(
        name="battle_heer",
        citation="Battle & Heer, Characterizing Exploratory Visual Analysis (2019)",
        template_names=(
            "analyzing_spread",
            "finding_correlations",
            "measuring_differences",
        ),
    ),
    "crossfilter": Workflow(
        name="crossfilter",
        citation="Battle et al., Database Benchmarking for Real-Time Interactive Querying (2020)",
        template_names=(
            "temporal_patterns",
            "finding_correlations",
            "filtering",
        ),
    ),
}


def get_workflow(name: str) -> Workflow:
    """Look up a workflow by name."""
    try:
        return WORKFLOWS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workflow {name!r}; available: {sorted(WORKFLOWS)}"
        ) from None
