"""The open-ended Markov model (paper §4.2, extending IDEBench).

IDEBench simulates users as a Markov chain over interaction *types*,
with per-type probabilities controlling the mix of filter, select, and
clear operations. We extend it exactly as the paper describes:

- the chain runs over categories of dashboard interactions;
- once a category is chosen, a concrete interaction of that category is
  drawn uniformly (users "fill in parameters using uniform
  probabilities", §4.2);
- a library of preset transition matrices ships with the benchmark,
  including the IDEBench defaults, and users can supply their own.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.errors import SimulationError


class InteractionCategory(Enum):
    """Interaction-type states of the Markov chain."""

    CATEGORICAL_FILTER = "categorical_filter"  # checkbox/radio/dropdown
    RANGE_FILTER = "range_filter"              # slider/brush/date range
    MARK_SELECT = "mark_select"                # click a mark in a viz
    CLEAR = "clear"                            # clear a widget/selection
    RESET = "reset"                            # reset the dashboard


#: Category of each concrete interaction kind (given the widget type).
def _categorize(
    interaction: Interaction, state: DashboardState
) -> InteractionCategory:
    kind = interaction.kind
    if kind is InteractionKind.RESET:
        return InteractionCategory.RESET
    if kind in (InteractionKind.WIDGET_CLEAR, InteractionKind.VIZ_CLEAR):
        return InteractionCategory.CLEAR
    if kind is InteractionKind.VIZ_SELECT:
        return InteractionCategory.MARK_SELECT
    widget = state.widgets[interaction.target]
    if widget.spec.is_categorical:
        return InteractionCategory.CATEGORICAL_FILTER
    return InteractionCategory.RANGE_FILTER


TransitionMatrix = dict[InteractionCategory, dict[InteractionCategory, float]]


def _uniform_row() -> dict[InteractionCategory, float]:
    categories = list(InteractionCategory)
    probability = 1.0 / len(categories)
    return {c: probability for c in categories}


def _row(**weights: float) -> dict[InteractionCategory, float]:
    by_name = {c.value: c for c in InteractionCategory}
    row = {by_name[name]: weight for name, weight in weights.items()}
    total = sum(row.values())
    return {c: row.get(c, 0.0) / total for c in InteractionCategory}


#: Preset transition matrices. ``idebench_default`` reproduces the
#: filter-heavy behaviour Eichmann et al. shipped with IDEBench (their
#: simulations overwhelmingly add filters, cf. Table 4's 13.2 filters
#: per visualization); ``balanced`` is SIMBA's default; the novice and
#: expert profiles are the familiarity presets of §4.3.
MARKOV_PRESETS: dict[str, TransitionMatrix] = {
    "idebench_default": {
        category: _row(
            categorical_filter=0.45,
            range_filter=0.30,
            mark_select=0.15,
            clear=0.08,
            reset=0.02,
        )
        for category in InteractionCategory
    },
    "balanced": {
        category: _row(
            categorical_filter=0.30,
            range_filter=0.20,
            mark_select=0.30,
            clear=0.15,
            reset=0.05,
        )
        for category in InteractionCategory
    },
    "uniform": {
        category: _uniform_row() for category in InteractionCategory
    },
    # Novices poke around: many selections, frequent clears and resets.
    "novice": {
        category: _row(
            categorical_filter=0.25,
            range_filter=0.15,
            mark_select=0.35,
            clear=0.15,
            reset=0.10,
        )
        for category in InteractionCategory
    },
    # Experts filter purposefully and rarely backtrack.
    "expert": {
        category: _row(
            categorical_filter=0.45,
            range_filter=0.25,
            mark_select=0.25,
            clear=0.04,
            reset=0.01,
        )
        for category in InteractionCategory
    },
}


class MarkovModel:
    """Stochastic interaction selection over the interaction layer."""

    name = "markov"

    def __init__(
        self,
        transitions: TransitionMatrix | str = "balanced",
        rng: random.Random | None = None,
    ) -> None:
        if isinstance(transitions, str):
            try:
                transitions = MARKOV_PRESETS[transitions]
            except KeyError:
                raise SimulationError(
                    f"unknown Markov preset {transitions!r}; available: "
                    f"{sorted(MARKOV_PRESETS)}"
                ) from None
        _validate_matrix(transitions)
        self.transitions = transitions
        self.rng = rng or random.Random(0)
        self.last_category: InteractionCategory | None = None

    def next_interaction(
        self, state: DashboardState
    ) -> Interaction | None:
        """Draw the next stochastic interaction.

        Draws a category from the chain row of the previous category
        (uniform over categories on the first step), then a concrete
        interaction of that category uniformly. Falls back to any
        available interaction when the drawn category has none.
        """
        available = state.available_interactions()
        if not available:
            return None
        by_category: dict[InteractionCategory, list[Interaction]] = {}
        for interaction in available:
            by_category.setdefault(
                _categorize(interaction, state), []
            ).append(interaction)
        # RESET is always applicable even if not enumerated.
        by_category.setdefault(InteractionCategory.RESET, []).append(
            Interaction(InteractionKind.RESET)
        )

        row = (
            self.transitions[self.last_category]
            if self.last_category is not None
            else _uniform_row()
        )
        category = self._draw_category(row, set(by_category))
        choice = self.rng.choice(by_category[category])
        self.last_category = category
        return choice

    def _draw_category(
        self,
        row: dict[InteractionCategory, float],
        available: set[InteractionCategory],
    ) -> InteractionCategory:
        candidates = [
            (category, probability)
            for category, probability in row.items()
            if category in available and probability > 0
        ]
        if not candidates:
            return self.rng.choice(sorted(available, key=lambda c: c.value))
        total = sum(p for _, p in candidates)
        pick = self.rng.random() * total
        cumulative = 0.0
        for category, probability in candidates:
            cumulative += probability
            if pick <= cumulative:
                return category
        return candidates[-1][0]

    def reset(self) -> None:
        """Forget the chain state (used between goal segments)."""
        self.last_category = None


def _validate_matrix(matrix: TransitionMatrix) -> None:
    for category in InteractionCategory:
        if category not in matrix:
            raise SimulationError(
                f"transition matrix missing row for {category.value!r}"
            )
        row = matrix[category]
        total = sum(row.values())
        if abs(total - 1.0) > 1e-6:
            raise SimulationError(
                f"transition row for {category.value!r} sums to {total}, "
                f"expected 1.0"
            )
        if any(p < 0 for p in row.values()):
            raise SimulationError(
                f"negative probability in row {category.value!r}"
            )
