"""Exploration-session simulation (paper §4).

- :mod:`repro.simulation.goals` — incremental goal-coverage tracking;
- :mod:`repro.simulation.oracle` — the Oracle model: LookAhead forward
  planning toward the goal set (Algorithm 1);
- :mod:`repro.simulation.markov` — the open-ended Markov model extending
  IDEBench's stochastic simulation;
- :mod:`repro.simulation.session` — interleaving both models with
  exponential decay (§4.3), producing interaction logs;
- :mod:`repro.simulation.workflows` — the three goal-ordering workflows
  (Shneiderman, Battle & Heer, Crossfilter).
"""

from repro.simulation.goals import GoalTracker
from repro.simulation.markov import (
    MARKOV_PRESETS,
    InteractionCategory,
    MarkovModel,
)
from repro.simulation.oracle import OracleModel
from repro.simulation.session import (
    InteractionRecord,
    SessionConfig,
    SessionLog,
    SessionSimulator,
)
from repro.simulation.workflows import (
    WORKFLOWS,
    Workflow,
    WorkflowNotApplicable,
    get_workflow,
)

__all__ = [
    "GoalTracker",
    "InteractionCategory",
    "InteractionRecord",
    "MARKOV_PRESETS",
    "MarkovModel",
    "OracleModel",
    "SessionConfig",
    "SessionLog",
    "SessionSimulator",
    "WORKFLOWS",
    "Workflow",
    "WorkflowNotApplicable",
    "get_workflow",
]
