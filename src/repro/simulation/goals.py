"""Incremental goal-coverage tracking.

:class:`GoalTracker` maintains, for each goal query, the set of result
cells still uncovered. The Oracle planner asks "how many new goal cells
would this candidate interaction cover?" hundreds of times per step, so
the tracker computes *gains* without re-unioning all observed results
(the naive ``∪R_g ⊆ ∪R_i`` test of §4.1.2, which it implements
incrementally).
"""

from __future__ import annotations

from repro.engine.interface import Engine, ResultSet, normalize_value
from repro.equivalence.results import ResultCache
from repro.sql.ast import Query
from repro.sql.formatter import format_query


class _GoalCoverage:
    """Uncovered cells of one goal query, keyed by lower-cased column."""

    def __init__(self, goal: Query, result: ResultSet) -> None:
        self.goal = goal
        self.uncovered: dict[str, set[object]] = {}
        self.total_cells = 0
        for index, name in enumerate(result.columns):
            values = {normalize_value(row[index]) for row in result.rows}
            self.uncovered[name.lower()] = values
            self.total_cells += len(values)
        self.covered_cells = 0

    @property
    def complete(self) -> bool:
        return all(not values for values in self.uncovered.values())

    @property
    def fraction(self) -> float:
        if self.total_cells == 0:
            return 1.0
        return self.covered_cells / self.total_cells

    def gain_from(self, observed: ResultSet) -> int:
        """How many uncovered cells this observed result would cover."""
        gain = 0
        for index, name in enumerate(observed.columns):
            pending = self.uncovered.get(name.lower())
            if not pending:
                continue
            observed_values = {
                normalize_value(row[index]) for row in observed.rows
            }
            gain += len(pending & observed_values)
        return gain

    def absorb(self, observed: ResultSet) -> int:
        """Permanently cover cells present in ``observed``; return gain."""
        gain = 0
        for index, name in enumerate(observed.columns):
            pending = self.uncovered.get(name.lower())
            if not pending:
                continue
            observed_values = {
                normalize_value(row[index]) for row in observed.rows
            }
            matched = pending & observed_values
            gain += len(matched)
            pending -= matched
        self.covered_cells += gain
        return gain


class GoalTracker:
    """Tracks coverage of a goal set by a stream of observed queries."""

    def __init__(self, goal_queries: list[Query], cache: ResultCache) -> None:
        self._cache = cache
        self.goals = [
            _GoalCoverage(goal, cache.execute(goal)) for goal in goal_queries
        ]
        self._seen_queries: set[str] = set()

    @property
    def complete(self) -> bool:
        """True when every goal's result set is fully covered."""
        return all(goal.complete for goal in self.goals)

    @property
    def progress(self) -> float:
        """Mean coverage fraction across goals (the θ heuristic's scale)."""
        if not self.goals:
            return 1.0
        return sum(goal.fraction for goal in self.goals) / len(self.goals)

    def gain(self, queries: list[Query]) -> int:
        """Total new cells the given queries would cover (no commit).

        Duplicate queries (already observed) contribute nothing — the
        same query re-emitted covers no new ground, which also steers
        the Oracle away from repeating itself.
        """
        total = 0
        for query in queries:
            key = format_query(query)
            if key in self._seen_queries:
                continue
            result = self._cache.execute(query)
            for goal in self.goals:
                total += goal.gain_from(result)
        return total

    def observe(self, queries: list[Query]) -> int:
        """Commit observed queries; return total newly covered cells."""
        total = 0
        for query in queries:
            key = format_query(query)
            result = self._cache.execute(query)
            self._seen_queries.add(key)
            for goal in self.goals:
                total += goal.absorb(result)
        return total

    def has_seen(self, query: Query) -> bool:
        return format_query(query) in self._seen_queries
