"""The Oracle model: LookAhead forward planning (paper §4.1, Algorithm 1).

The Oracle receives the goal set and the interaction layer of the graph
representation, and repeatedly picks the interaction maximizing the
heuristic θ — the overlap between the goal result sets and the result
sets the candidate state would have observed (θ(s, R_g) = |R_g ∩ R(s)|).

Planning is re-done after every executed step ("perform partial plan,
observe current state, re-plan"), matching Algorithm 1's interleaving of
planning and acting. Lookahead depth is configurable; depth 1 is the
paper's default behaviour, depth 2 explores one extra step and is
exercised by the ablation benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.simulation.goals import GoalTracker
from repro.sql.ast import referenced_columns


@dataclass(frozen=True)
class PlannedStep:
    """One planned interaction with its heuristic score."""

    interaction: Interaction
    gain: int


class OracleModel:
    """Greedy LookAhead planner over the dashboard interaction layer.

    Parameters
    ----------
    tracker:
        Shared goal-coverage tracker (θ's bookkeeping).
    lookahead:
        Planning depth. Depth 1 scores each applicable interaction by
        its immediate gain; depth 2 adds the best follow-up gain.
    beam_width:
        At depth >= 2, only the top ``beam_width`` depth-1 candidates
        are expanded (full expansion is quadratic in the action count).
    rng:
        Used only to break exact ties, keeping runs reproducible.
    """

    name = "oracle"

    def __init__(
        self,
        tracker: GoalTracker,
        lookahead: int = 1,
        beam_width: int = 5,
        rng: random.Random | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.tracker = tracker
        self.lookahead = lookahead
        self.beam_width = beam_width
        self.rng = rng or random.Random(0)
        self.plans_evaluated = 0

    # -- Algorithm 1's Lookahead procedure -------------------------------------

    def next_interaction(
        self, state: DashboardState
    ) -> Interaction | None:
        """Pick the applicable interaction maximizing θ.

        Returns ``None`` when no applicable interaction makes progress
        (the "return failure" branch of Algorithm 1) — the session layer
        then either stops or lets the Markov model roam.
        """
        candidates = self._score_candidates(state)
        if not candidates:
            return None
        best_gain = max(step.gain for step in candidates)
        if best_gain <= 0 and self.lookahead == 1:
            return self._escape_clear(state)
        if self.lookahead >= 2:
            candidates = self._deepen(state, candidates)
            best_gain = max(step.gain for step in candidates)
            if best_gain <= 0:
                return self._escape_clear(state)
        top = [step for step in candidates if step.gain == best_gain]
        return self.rng.choice(top).interaction

    def _escape_clear(self, state: DashboardState) -> Interaction | None:
        """Two-step recovery: clear a goal-irrelevant active filter.

        When no single interaction gains coverage, the usual cause is a
        leftover filter from the open-ended phase distorting every
        aggregate. Clearing it gains nothing *immediately* (the restored
        queries were already seen), so the greedy heuristic would stall;
        a real analyst simply removes the stale filter and continues.
        """
        relevant_columns: set[str] = set()
        for goal in self.tracker.goals:
            if not goal.complete:
                relevant_columns |= referenced_columns(goal.goal)
        if not relevant_columns:
            return None
        for widget_id in sorted(state.widget_state):
            if state.widget_state[widget_id] is None:
                continue
            if state.widgets[widget_id].spec.column not in relevant_columns:
                return Interaction(
                    InteractionKind.WIDGET_CLEAR, widget_id
                )
        for viz_id in sorted(state.viz_selection):
            selections = state.viz_selection[viz_id]
            if selections and all(
                column not in relevant_columns for column, _ in selections
            ):
                return Interaction(InteractionKind.VIZ_CLEAR, viz_id)
        return None

    def _score_candidates(
        self, state: DashboardState
    ) -> list[PlannedStep]:
        """Depth-1 scoring: apply each interaction to a copy, score gain."""
        steps: list[PlannedStep] = []
        for interaction in self._relevant_interactions(state):
            candidate = state.copy()
            emitted = candidate.apply(interaction)
            fresh = [q for q in emitted if not self.tracker.has_seen(q)]
            gain = self.tracker.gain(fresh) if fresh else 0
            self.plans_evaluated += 1
            steps.append(PlannedStep(interaction, gain))
        return steps

    def _relevant_interactions(
        self, state: DashboardState
    ) -> list[Interaction]:
        """Prune the action space to goal-relevant interactions.

        An interaction is relevant when it filters a column the pending
        goals reference, or when it clears an active filter (clearing
        irrelevant filters restores the unrestricted aggregates goals
        usually need). Falls back to the full action space if pruning
        empties it — correctness over speed.
        """
        relevant_columns: set[str] = set()
        for goal in self.tracker.goals:
            if not goal.complete:
                relevant_columns |= referenced_columns(goal.goal)
        available = state.available_interactions()
        if not relevant_columns:
            return available
        pruned: list[Interaction] = []
        for interaction in available:
            kind = interaction.kind
            if kind in (
                InteractionKind.WIDGET_CLEAR,
                InteractionKind.VIZ_CLEAR,
                InteractionKind.RESET,
            ):
                pruned.append(interaction)
            elif kind is InteractionKind.VIZ_SELECT:
                column, _ = interaction.value  # type: ignore[misc]
                if column in relevant_columns:
                    pruned.append(interaction)
            else:  # widget toggle/set
                widget = state.widgets[interaction.target]
                if widget.spec.column in relevant_columns:
                    pruned.append(interaction)
        return pruned or available

    def _deepen(
        self, state: DashboardState, candidates: list[PlannedStep]
    ) -> list[PlannedStep]:
        """Depth-2 refinement over the best depth-1 candidates."""
        candidates = sorted(
            candidates, key=lambda step: step.gain, reverse=True
        )
        beam = candidates[: self.beam_width]
        deepened: list[PlannedStep] = []
        for step in beam:
            candidate = state.copy()
            emitted = candidate.apply(step.interaction)
            # Approximate: the follow-up gain ignores overlap between the
            # two steps' contributions, which only ever overestimates by
            # cells both steps cover — acceptable for a beam heuristic.
            follow_up = 0
            for second in candidate.available_interactions():
                second_state = candidate.copy()
                second_emitted = second_state.apply(second)
                fresh = [
                    q
                    for q in second_emitted
                    if not self.tracker.has_seen(q)
                ]
                gain = self.tracker.gain(fresh) if fresh else 0
                self.plans_evaluated += 1
                follow_up = max(follow_up, gain)
            deepened.append(
                PlannedStep(step.interaction, step.gain + follow_up)
            )
        return deepened
