"""Exploration-session simulation: interleaved Oracle + Markov (§4.3).

A :class:`SessionSimulator` drives one simulated analyst through one
dashboard toward an ordered goal set:

- the session starts open-ended (Markov-dominated) and becomes
  goal-focused over time via exponential decay of P(Markov), Figure 5;
- goals are pursued in order; when goal *i* is covered the simulation
  continues from the current dashboard state toward goal *i+1*;
- every emitted SQL query is executed on the system-under-test engine
  and timed — query durations are the benchmark's primary metric.

The reference engine (used for goal-coverage logic) and the measured
engine are separate so that goal bookkeeping never pollutes timings.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.dashboard.spec import DashboardSpec
from repro.dashboard.state import DashboardState, Interaction
from repro.engine.interface import Engine, QueryResult
from repro.engine.table import Table
from repro.equivalence.results import ResultCache
from repro.errors import SimulationError
from repro.simulation.goals import GoalTracker
from repro.simulation.markov import MarkovModel
from repro.simulation.oracle import OracleModel
from repro.sql.ast import Query


@dataclass(frozen=True)
class SessionConfig:
    """Tunable parameters of a simulated session.

    ``p_markov_initial`` and ``decay_rate`` define
    ``P(Markov at step t) = p0 * exp(-decay * t)`` (paper Figure 5).
    The defaults yield session lengths consistent with the 12-minute
    exploration studies the paper tunes against: novice-like sessions of
    roughly 15-40 interactions.
    """

    p_markov_initial: float = 1.0
    decay_rate: float = 0.15
    max_steps_per_goal: int = 40
    max_total_steps: int = 120
    #: Abandon the current goal after this many consecutive interactions
    #: with no coverage progress once the session is goal-focused
    #: (P(Markov) < 0.5). Mirrors analysts giving up on a dead end.
    stall_limit: int = 10
    markov_preset: str = "balanced"
    lookahead: int = 1
    #: When True, each goal segment runs its full step budget even after
    #: the goal completes — fixed-duration sessions like the paper's
    #: 12-minute analyst studies.
    run_to_max: bool = False
    #: When True, goals are re-ordered dynamically: before each segment
    #: the simulation pursues the pending goal with the highest current
    #: coverage (the "dynamically generate goal orderings based on the
    #: current model and dashboard states" extension of §4.3).
    dynamic_goal_order: bool = False
    #: How each interaction's emitted queries execute: an
    #: :class:`~repro.execution.ExecutionPolicy` (or preset name).
    #: ``None`` resolves to the historical sequential default —
    #: ``ExecutionPolicy.serial()``, one engine call per query, the
    #: paper's setup — unless the deprecated per-knob fields below are
    #: set, in which case they map onto the equivalent policy. After
    #: construction this field always holds a resolved
    #: ``ExecutionPolicy``; results are byte-identical for every
    #: policy (:mod:`repro.concurrency`, :mod:`repro.sharding`,
    #: :mod:`repro.engine.multiplan`).
    policy: object = None
    #: Deprecated (use ``policy``): route each fan-out through the
    #: shared-scan optimizer
    #: (:meth:`~repro.engine.interface.Engine.execute_batch`).
    batch: bool = False
    #: Deprecated (use ``policy``): worker-pool width for each
    #: interaction's fan-out.
    workers: int = 1
    #: Deprecated (use ``policy``): row-range shards per scan group
    #: (:mod:`repro.sharding`).
    shards: int = 1
    #: Deprecated (use ``policy``): combined-pass evaluation of
    #: unfiltered scan groups (:mod:`repro.engine.multiplan`).
    multiplan: bool = False
    seed: int = 0

    #: The deprecated knob fields' defaults (the pre-policy sequential
    #: behavior); "set" means "differs from these".
    _KNOB_DEFAULTS = {
        "batch": False, "workers": 1, "shards": 1, "multiplan": False,
    }

    def __post_init__(self) -> None:
        from repro.execution import POLICY_KNOBS, reconcile_config_policy

        policy, fields_ = reconcile_config_policy(
            self.policy,
            {k: getattr(self, k) for k in POLICY_KNOBS},
            defaults=self._KNOB_DEFAULTS,
            api="SessionConfig",
        )
        object.__setattr__(self, "policy", policy)
        for name, value in fields_.items():
            object.__setattr__(self, name, value)

    def with_policy(self, policy) -> "SessionConfig":
        """A copy executing under ``policy`` (fields re-mirrored)."""
        from dataclasses import replace

        from repro.execution import POLICY_KNOBS, coerce_policy

        policy = coerce_policy(policy)
        return replace(
            self,
            policy=policy,
            **{k: getattr(policy, k) for k in POLICY_KNOBS},
        )

    def p_markov(self, step: int) -> float:
        """Probability of using the Markov model at global step ``step``."""
        return self.p_markov_initial * math.exp(-self.decay_rate * step)

    @classmethod
    def novice(cls, seed: int = 0) -> "SessionConfig":
        """Familiarity preset: long open-ended phase (§4.3)."""
        return cls(
            p_markov_initial=1.0,
            decay_rate=0.06,
            markov_preset="novice",
            seed=seed,
        )

    @classmethod
    def expert(cls, seed: int = 0) -> "SessionConfig":
        """Familiarity preset: near-immediate goal focus (§4.3)."""
        return cls(
            p_markov_initial=0.5,
            decay_rate=0.4,
            markov_preset="expert",
            seed=seed,
        )


@dataclass
class InteractionRecord:
    """One executed interaction with its emitted, timed queries."""

    step: int
    goal_index: int
    model: str  # "oracle" | "markov" | "initial"
    interaction: Interaction | None
    queries: list[QueryResult]
    progress_after: float

    @property
    def empty_results(self) -> int:
        """How many emitted queries returned zero rows.

        The paper's user-study experts used repeated zero-result queries
        as their tell for simulated logs (§6.4); this surfaces it.
        """
        return sum(1 for q in self.queries if q.rows_returned == 0)

    def describe(self) -> str:
        if self.interaction is None:
            return "initial render"
        return self.interaction.describe()


@dataclass
class SessionLog:
    """The full record of one simulated exploration session."""

    dashboard: str
    engine: str
    workflow: str | None
    records: list[InteractionRecord] = field(default_factory=list)
    goals_completed: int = 0
    goals_total: int = 0

    @property
    def interaction_count(self) -> int:
        return sum(1 for r in self.records if r.interaction is not None)

    @property
    def query_count(self) -> int:
        return sum(len(r.queries) for r in self.records)

    def query_durations(self) -> list[float]:
        """Wall-clock durations (ms) of every query issued."""
        return [q.duration_ms for r in self.records for q in r.queries]

    def average_duration(self) -> float:
        durations = self.query_durations()
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def empty_result_count(self) -> int:
        return sum(r.empty_results for r in self.records)

    def model_mix(self) -> dict[str, int]:
        """How many interactions each model contributed."""
        mix: dict[str, int] = {}
        for record in self.records:
            if record.interaction is not None:
                mix[record.model] = mix.get(record.model, 0) + 1
        return mix

    def queries(self) -> list[str]:
        """All emitted SQL texts, in order."""
        return [q.sql for r in self.records for q in r.queries]

    def to_rows(self) -> list[dict[str, object]]:
        """Flat log rows (the artifact shown to user-study experts)."""
        rows: list[dict[str, object]] = []
        for record in self.records:
            for query in record.queries:
                rows.append(
                    {
                        "step": record.step,
                        "interaction": record.describe(),
                        "sql": query.sql,
                        "rows_returned": query.rows_returned,
                        "duration_ms": round(query.duration_ms, 3),
                    }
                )
        return rows


class SessionSimulator:
    """Simulates one analyst exploring one dashboard toward a goal set."""

    def __init__(
        self,
        spec: DashboardSpec,
        table: Table,
        goal_queries: list[Query],
        measured_engine: Engine,
        reference_engine: Engine,
        config: SessionConfig | None = None,
        workflow_name: str | None = None,
    ) -> None:
        if not goal_queries:
            raise SimulationError("session requires at least one goal query")
        self.spec = spec
        self.table = table
        self.goal_queries = goal_queries
        self.measured_engine = measured_engine
        self.config = config or SessionConfig()
        self.workflow_name = workflow_name
        self.cache = ResultCache(reference_engine)
        self.rng = random.Random(self.config.seed)
        self.state = DashboardState(spec, table)
        self.markov = MarkovModel(
            self.config.markov_preset,
            random.Random(self.config.seed + 1),
        )

    def run(self) -> SessionLog:
        """Execute the full session and return its log."""
        log = SessionLog(
            dashboard=self.spec.name,
            engine=self.measured_engine.name,
            workflow=self.workflow_name,
            goals_total=len(self.goal_queries),
        )
        observed: list[Query] = []
        step = 0

        # Initial render: every visualization fires its base query.
        initial = self.state.initial_queries()
        log.records.append(
            InteractionRecord(
                step=step,
                goal_index=0,
                model="initial",
                interaction=None,
                queries=self._measure_all(initial),
                progress_after=0.0,
            )
        )
        observed.extend(initial)

        pending = list(enumerate(self.goal_queries))
        while pending:
            if self.config.dynamic_goal_order:
                pending.sort(
                    key=lambda item: self._current_coverage(
                        item[1], observed
                    ),
                    reverse=True,
                )
            goal_index, goal = pending.pop(0)
            tracker = GoalTracker([goal], self.cache)
            tracker.observe(observed)
            oracle = OracleModel(
                tracker,
                lookahead=self.config.lookahead,
                rng=random.Random(self.config.seed + 2 + goal_index),
            )
            self.markov.reset()
            goal_steps = 0
            stalled = 0
            while (
                (self.config.run_to_max or not tracker.complete)
                and goal_steps < self.config.max_steps_per_goal
                and step < self.config.max_total_steps
            ):
                step += 1
                goal_steps += 1
                interaction, model_name = self._choose(oracle, step)
                if interaction is None:
                    break
                emitted = self.state.apply(interaction)
                gained = tracker.observe(emitted)
                observed.extend(emitted)
                log.records.append(
                    InteractionRecord(
                        step=step,
                        goal_index=goal_index,
                        model=model_name,
                        interaction=interaction,
                        queries=self._measure_all(emitted),
                        progress_after=tracker.progress,
                    )
                )
                if gained > 0:
                    stalled = 0
                elif self.config.p_markov(step) < 0.5:
                    # Goal-focused but not progressing: count the stall
                    # and abandon the goal once it exceeds the limit,
                    # like an analyst giving up on a dead end.
                    stalled += 1
                    if stalled >= self.config.stall_limit:
                        break
            if tracker.complete:
                log.goals_completed += 1
            if step >= self.config.max_total_steps:
                break
        return log

    # -- internals ----------------------------------------------------------------

    def _choose(
        self, oracle: OracleModel, step: int
    ) -> tuple[Interaction | None, str]:
        """Draw the model for this step and ask it for an interaction.

        When the Oracle cannot make progress (no interaction covers new
        goal cells) the Markov model takes over for the step, mirroring
        how a real analyst explores when the next move is not obvious.
        """
        use_markov = self.rng.random() < self.config.p_markov(step)
        if use_markov:
            interaction = self.markov.next_interaction(self.state)
            if interaction is not None:
                return interaction, "markov"
        interaction = oracle.next_interaction(self.state)
        if interaction is not None:
            return interaction, "oracle"
        interaction = self.markov.next_interaction(self.state)
        if interaction is not None:
            return interaction, "markov"
        return None, "none"

    def _current_coverage(
        self, goal: Query, observed: list[Query]
    ) -> float:
        """Coverage a goal would start with, for dynamic ordering."""
        tracker = GoalTracker([goal], self.cache)
        tracker.observe(observed)
        return tracker.progress

    def _measure(self, query: Query) -> QueryResult:
        """Run one query on the system under test, timed."""
        return self.measured_engine.execute_timed(query)

    def _measure_all(self, queries: list[Query]) -> list[QueryResult]:
        """Run one interaction's emitted fan-out on the measured engine.

        ``config.policy`` decides the strategy: batch policies send the
        whole fan-out through the shared-scan optimizer as a single
        unit — the execution strategy under test — while sequential
        policies preserve the paper's one-call-per-query behavior,
        workers overlapping the independent units either way; results
        are byte-identical.
        """
        policy = self.config.policy
        if policy.batch:
            return self.measured_engine.execute_batch(
                list(queries), policy
            )
        if policy.workers > 1:
            from repro.concurrency.sessions import execute_all

            return execute_all(
                self.measured_engine, list(queries),
                workers=policy.workers,
            )
        return [self._measure(q) for q in queries]
