"""Capability-aware goal generation.

The paper observes that "a dashboard emits certain query structures
which constrain the range of exploration goals it can support" (§2.1).
This module makes that reciprocal idea operational: goals are
instantiated from the *capabilities* of the target dashboard — the
aggregates its visualizations actually compute and the columns its
widgets/marks can filter — so a goal is reachable through a valid
sequence of interactions (possibly many, as in Figure 3's union of four
filtered queries).

Selection rules:

- goal *group keys* come from columns that are both displayed (appear as
  a visualization dimension, so their values show up in result sets) and
  filterable (a widget or mark selection can restrict to one member, so
  per-member aggregates are reachable);
- goal *measures* come from (aggregate, column) pairs some visualization
  actually computes;
- combinations a single visualization answers outright are deprioritized
  so goals need a sequence of interactions, like the paper's Figure 3
  goal that is "not syntactically achievable but semantically achievable
  as the union of four queries".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algebra.expressions import (
    Agg,
    Attribute,
    AttributeRole,
    Compare,
)
from repro.algebra.templates import TemplateParameterError, get_template
from repro.algebra.translate import GoalQuery, translate
from repro.dashboard.spec import DashboardSpec


@dataclass
class DashboardCapabilities:
    """What a dashboard can express, extracted from its specification."""

    #: Categorical columns a user can filter on (widgets + selectable dims).
    filterable_categorical: list[str] = field(default_factory=list)
    #: Quantitative columns covered by range widgets.
    filterable_quantitative: list[str] = field(default_factory=list)
    #: (agg, column) pairs some visualization computes; column None = COUNT(*).
    measured_pairs: list[tuple[str, str | None]] = field(default_factory=list)
    #: Categorical columns appearing as visualization dimensions.
    dimension_categorical: list[str] = field(default_factory=list)
    #: Quantitative columns appearing as *unbinned* visualization dimensions
    #: (ordinal axes such as hour-of-day).
    dimension_quantitative: list[str] = field(default_factory=list)
    #: Temporal (column, unit) pairs appearing as binned dimensions.
    temporal_dimensions: list[tuple[str, str]] = field(default_factory=list)
    #: Temporal columns referenced anywhere in the interface.
    temporal_columns: list[str] = field(default_factory=list)

    @classmethod
    def from_spec(cls, spec: DashboardSpec) -> "DashboardCapabilities":
        caps = cls()
        schema = spec.database.schema()
        seen: dict[str, set] = {key: set() for key in (
            "cat", "quant", "pairs", "dim_cat", "dim_quant", "temporal",
            "t_cols",
        )}

        def _add(kind: str, bucket: list, value: object) -> None:
            if value not in seen[kind]:
                seen[kind].add(value)
                bucket.append(value)

        for widget in spec.interface.widgets:
            dtype = schema.dtype(widget.column)
            if widget.is_categorical:
                _add("cat", caps.filterable_categorical, widget.column)
            elif widget.is_range and dtype.is_numeric:
                _add("quant", caps.filterable_quantitative, widget.column)
            if dtype.is_temporal:
                _add("t_cols", caps.temporal_columns, widget.column)

        for viz in spec.interface.visualizations:
            for dim in viz.dimensions:
                dtype = schema.dtype(dim.column)
                if dtype.is_temporal:
                    _add("t_cols", caps.temporal_columns, dim.column)
                if dim.bin is None:
                    if dtype.is_categorical:
                        _add("dim_cat", caps.dimension_categorical, dim.column)
                        if viz.selectable:
                            _add(
                                "cat",
                                caps.filterable_categorical,
                                dim.column,
                            )
                    elif dtype.is_numeric:
                        _add(
                            "dim_quant",
                            caps.dimension_quantitative,
                            dim.column,
                        )
                elif isinstance(dim.bin, str) and dtype.is_temporal:
                    _add(
                        "temporal",
                        caps.temporal_dimensions,
                        (dim.column, dim.bin),
                    )
            for measure in viz.measures:
                _add(
                    "pairs",
                    caps.measured_pairs,
                    (measure.agg, measure.column),
                )
        return caps

    # -- selection helpers -------------------------------------------------------

    def goal_key_pool(self) -> list[str]:
        """Categorical columns usable as goal group keys.

        Displayed-and-filterable columns first (fully achievable goals);
        falls back to merely-filterable ones.
        """
        displayed = [
            c
            for c in self.dimension_categorical
            if c in self.filterable_categorical
        ]
        return displayed or list(self.filterable_categorical)

    def column_pairs(self) -> list[tuple[str, str]]:
        """Measured (agg, column) pairs excluding COUNT(*)."""
        return [
            (agg, column)
            for agg, column in self.measured_pairs
            if column is not None
        ]

    def measured_columns(self) -> list[str]:
        return sorted({c for _, c in self.column_pairs()})


def _dashboard_graph(spec: DashboardSpec):
    """Interaction graph for reachability checks (cached per spec)."""
    from repro.dashboard.graph import DashboardGraph

    key = id(spec)
    cached = _GRAPH_CACHE.get(key)
    if cached is None:
        cached = DashboardGraph(spec)
        _GRAPH_CACHE[key] = cached
    return cached


_GRAPH_CACHE: dict[int, object] = {}


def _filter_sources(spec: DashboardSpec, column: str) -> list[str]:
    """Components that can filter ``column`` (widgets + selectable dims)."""
    sources = [
        w.id for w in spec.interface.widgets if w.column == column
    ]
    for viz in spec.interface.visualizations:
        if viz.selectable and any(
            d.column == column and d.bin is None for d in viz.dimensions
        ):
            sources.append(viz.id)
    return sources


def _combo_class(
    spec: DashboardSpec, categorical: str, agg: str, column: str
) -> str:
    """Classify a ``C x agg(Q)`` goal against the dashboard.

    - ``"iterative"`` — some visualization computes ``agg(Q)`` with *no*
      grouping (a stat panel) *and* is reachable from a component that
      filters C, so iterating the filter over C's members produces the
      per-member aggregates one query at a time — the Figure 3 pattern.
      These are the interesting goals.
    - ``"trivial"`` — a visualization grouped exactly by C already shows
      ``agg(Q)``; the initial render covers the goal.
    - ``"hard"`` — no visualization produces the needed cells; the goal
      is formulable but completion is unlikely within the step budget.
    """
    graph = _dashboard_graph(spec)
    sources = _filter_sources(spec, categorical)
    trivial = False
    iterative = False
    for viz in spec.interface.visualizations:
        has_measure = any(
            m.agg == agg and m.column == column for m in viz.measures
        )
        if not has_measure:
            continue
        if not viz.dimensions:
            reachable = any(
                viz.id in graph.reachable_visualizations(source)
                for source in sources
            )
            if reachable:
                iterative = True
        elif (
            len(viz.dimensions) == 1
            and viz.dimensions[0].column == categorical
            and viz.dimensions[0].bin is None
        ):
            trivial = True
    if iterative:
        return "iterative"
    if trivial:
        return "trivial"
    return "hard"


def _choose_combo(
    spec: DashboardSpec,
    caps: DashboardCapabilities,
    rng: random.Random,
    allowed_aggs: set[str] | None = None,
) -> tuple[str, str, str]:
    """Pick (categorical, agg, column), preferring goals that require a
    sequence of interactions, then trivially-covered goals, then merely
    formulable ones."""
    keys = caps.goal_key_pool()
    pairs = caps.column_pairs()
    if allowed_aggs is not None:
        restricted = [(a, c) for a, c in pairs if a in allowed_aggs]
        pairs = restricted or pairs
    if not keys or not pairs:
        raise TemplateParameterError(
            f"dashboard {spec.name!r} lacks filterable categorical columns "
            f"or column aggregates"
        )
    combos = [(k, a, c) for k in keys for a, c in pairs]
    rng.shuffle(combos)
    by_class: dict[str, tuple[str, str, str]] = {}
    for categorical, agg, column in combos:
        combo_class = _combo_class(spec, categorical, agg, column)
        by_class.setdefault(combo_class, (categorical, agg, column))
        if combo_class == "iterative":
            break
    for preference in ("iterative", "trivial", "hard"):
        if preference in by_class:
            return by_class[preference]
    return combos[0]  # pragma: no cover - by_class is never empty


def generate_goal(
    template_name: str,
    spec: DashboardSpec,
    rng: random.Random,
) -> GoalQuery:
    """Instantiate one template against a dashboard's capabilities.

    Raises
    ------
    TemplateParameterError
        When the dashboard cannot support the template (the paper's
        MyRide-vs-correlations incompatibility surfaces here).
    """
    caps = DashboardCapabilities.from_spec(spec)
    template = get_template(template_name)
    table = spec.database.table

    if template_name in ("analyzing_spread", "measuring_differences"):
        categorical, agg, column = _choose_combo(spec, caps, rng)
        params: dict[str, object] = {
            "categorical": categorical,
            "quantitative": column,
            "agg": agg,
        }
        if template_name == "analyzing_spread":
            params["threshold"] = 1
        return template.instantiate(table, **params)

    if template_name == "filtering":
        categorical, agg, column = _choose_combo(
            spec, caps, rng, allowed_aggs={"sum", "count"}
        )
        return template.instantiate(
            table,
            categorical=categorical,
            quantitative=column,
            agg=agg,
            comparison=">",
            constant=0,
        )

    if template_name == "finding_correlations":
        columns = caps.measured_columns()
        if len(columns) < 2:
            raise TemplateParameterError(
                f"dashboard {spec.name!r} exposes fewer than two measured "
                f"quantitative columns; correlation goals are inapplicable"
            )
        keys = caps.goal_key_pool()
        pairs = caps.column_pairs()
        # Prefer a (modulator, pair, pair) combination in which both
        # aggregates are reachable via per-member filtering (Example 2.2:
        # call volume vs. abandonment over the same modulator).
        candidates: list[tuple[str, tuple[str, str], tuple[str, str]]] = []
        for modulator in keys:
            for i, first in enumerate(pairs):
                for second in pairs[i + 1 :]:
                    if first[1] == second[1]:
                        continue
                    classes = {
                        _combo_class(spec, modulator, *first),
                        _combo_class(spec, modulator, *second),
                    }
                    if "hard" not in classes:
                        candidates.append((modulator, first, second))
        if candidates:
            modulator, (agg1, q1), (agg2, q2) = rng.choice(candidates)
            return template.instantiate(
                table,
                quantitative1=q1,
                quantitative2=q2,
                modulator=modulator,
                agg1=agg1,
                agg2=agg2,
            )
        q1, q2 = rng.sample(columns, 2)
        params = {
            "quantitative1": q1,
            "quantitative2": q2,
            "agg1": _agg_for(caps, q1, rng),
            "agg2": _agg_for(caps, q2, rng),
        }
        if keys:
            params["modulator"] = rng.choice(keys)
        return template.instantiate(table, **params)

    if template_name == "identification":
        return _identification_goal(template, spec, caps, rng)

    if template_name == "temporal_patterns":
        return _temporal_goal(template, spec, caps, rng)

    raise TemplateParameterError(f"unknown template {template_name!r}")


def _identification_goal(
    template,
    spec: DashboardSpec,
    caps: DashboardCapabilities,
    rng: random.Random,
) -> GoalQuery:
    """Identification goal: ``C × (agg1(Q) + agg2(Q))``.

    Table 2 allows "ordered list of quantitative attributes OR aggregate
    attributes"; we use the aggregates the dashboard actually computes
    for the chosen column (true max/min when available, otherwise e.g.
    count + sum), keeping the goal achievable.
    """
    from repro.algebra.expressions import Concat

    pairs = caps.column_pairs()
    keys = caps.goal_key_pool()
    if not pairs or not keys:
        raise TemplateParameterError(
            f"dashboard {spec.name!r} lacks aggregates or group keys "
            f"for identification goals"
        )
    max_cols = {c for a, c in pairs if a == "max"}
    min_cols = {c for a, c in pairs if a == "min"}
    both = sorted(max_cols & min_cols)
    categorical = rng.choice(keys)
    if both:
        return template.instantiate(
            spec.database.table,
            categorical=categorical,
            quantitative=rng.choice(both),
        )
    # Fall back to the aggregate attributes the dashboard computes.
    column = rng.choice(pairs)[1]
    aggs = sorted({a for a, c in pairs if c == column})[:2]
    quant = Attribute(column, AttributeRole.QUANTITATIVE)
    measure = (
        Concat(Agg(quant, aggs[0]), Agg(quant, aggs[1]))
        if len(aggs) > 1
        else Agg(quant, aggs[0])
    )
    expression = Compare(
        Attribute(categorical, AttributeRole.CATEGORICAL), measure
    )
    return translate(
        expression,
        spec.database.table,
        template=template.name,
        description=template.generalization,
    )


def _temporal_goal(
    template,
    spec: DashboardSpec,
    caps: DashboardCapabilities,
    rng: random.Random,
) -> GoalQuery:
    """Temporal-pattern goal with graceful fallbacks.

    Preference order (the paper notes the template "can easily be
    extended ... swapping temporal for quantitative or categorical
    attributes", §2.3):

    1. a binned temporal dimension some visualization displays;
    2. an ordinal quantitative dimension (e.g. hour-of-day);
    3. any temporal column the interface references (formulable, though
       completion may require capping the session).
    """
    pairs = caps.column_pairs()
    if not pairs:
        raise TemplateParameterError(
            f"dashboard {spec.name!r} computes no column aggregates"
        )
    agg, column = rng.choice(pairs)
    if caps.temporal_dimensions:
        # Prefer a (temporal dim, measure) pairing some visualization
        # displays outright; the goal is then reached by viewing (and
        # possibly un-filtering) that visualization.
        displayed: list[tuple[str, str, str, str]] = []
        for viz in spec.interface.visualizations:
            if len(viz.dimensions) != 1:
                continue
            dim = viz.dimensions[0]
            if not isinstance(dim.bin, str):
                continue
            for measure in viz.measures:
                if measure.column is not None:
                    displayed.append(
                        (dim.column, dim.bin, measure.agg, measure.column)
                    )
        if displayed:
            t_column, unit, agg, column = rng.choice(displayed)
        else:
            t_column, unit = rng.choice(caps.temporal_dimensions)
        return template.instantiate(
            spec.database.table,
            temporal=t_column,
            quantitative=column,
            agg=agg,
            unit=unit,
        )
    if caps.dimension_quantitative:
        ordinal = rng.choice(caps.dimension_quantitative)
        expression = Compare(
            Attribute(ordinal, AttributeRole.TEMPORAL),
            Agg(Attribute(column, AttributeRole.QUANTITATIVE), agg),
        )
        return translate(
            expression,
            spec.database.table,
            template=template.name,
            description=template.generalization,
        )
    if caps.temporal_columns:
        t_column = rng.choice(caps.temporal_columns)
        return template.instantiate(
            spec.database.table,
            temporal=t_column,
            quantitative=column,
            agg=agg,
            unit="day",
        )
    raise TemplateParameterError(
        f"dashboard {spec.name!r} exposes no temporal or ordinal axis"
    )


def _agg_for(
    caps: DashboardCapabilities, column: str, rng: random.Random
) -> str:
    aggs = [a for a, c in caps.measured_pairs if c == column]
    return rng.choice(aggs) if aggs else "sum"


def generate_goal_set(
    template_names: list[str] | tuple[str, ...],
    spec: DashboardSpec,
    rng: random.Random | None = None,
) -> list[GoalQuery]:
    """Instantiate an ordered goal set against one dashboard."""
    rng = rng or random.Random(0)
    return [generate_goal(name, spec, rng) for name in template_names]
