"""SIMBA: a SImulation-BAsed benchmark for interactive data exploration.

Reproduction of "An Adaptive Benchmark for Modeling User Exploration of
Large Datasets" (SIGMOD 2025). The package simulates how analysts
explore dashboards toward analysis goals and measures DBMS performance
under the resulting query workloads.

Quickstart::

    from repro import (
        SessionConfig, SessionSimulator, create_engine,
        generate_dataset, get_workflow, load_dashboard,
    )

    spec = load_dashboard("customer_service")
    table = generate_dataset("customer_service", 10_000, seed=0)
    engine = create_engine("sqlite")
    engine.load_table(table)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    goals = get_workflow("shneiderman").instantiate_for_dashboard(spec)
    log = SessionSimulator(
        spec, table, [g.query for g in goals],
        measured_engine=engine, reference_engine=reference,
        config=SessionConfig(seed=0),
    ).run()
    print(log.average_duration(), "ms over", log.query_count, "queries")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.algebra import GOAL_TEMPLATES, get_template, translate
from repro.approx import approximate_execute, progressive_execute
from repro.concurrency import RefreshJob, ScanGroupExecutor, refresh_many
from repro.dashboard import DashboardSpec, DashboardState, Interaction
from repro.dashboard.library import DASHBOARD_NAMES, all_dashboards, load_dashboard
from repro.engine import (
    CachedEngine,
    Engine,
    ResultSet,
    Table,
    available_engines,
    create_engine,
)
from repro.logs import eva_metrics, export_session, replay_log
from repro.equivalence import EquivalenceSuite
from repro.harness import BenchmarkConfig, BenchmarkRunner, table3_matrix
from repro.idebench import IDEBenchConfig, IDEBenchSimulator
from repro.simulation import (
    MarkovModel,
    OracleModel,
    SessionConfig,
    SessionLog,
    SessionSimulator,
    get_workflow,
)
from repro.sql import parse_query
from repro.study import run_user_study
from repro.workload import DATASET_NAMES, generate_dataset
from repro.workload.normalize import DimensionSpec, normalize_star

__version__ = "1.1.0"

__all__ = [
    "BenchmarkConfig",
    "BenchmarkRunner",
    "CachedEngine",
    "DASHBOARD_NAMES",
    "DATASET_NAMES",
    "DashboardSpec",
    "DashboardState",
    "DimensionSpec",
    "Engine",
    "EquivalenceSuite",
    "GOAL_TEMPLATES",
    "IDEBenchConfig",
    "IDEBenchSimulator",
    "Interaction",
    "MarkovModel",
    "OracleModel",
    "RefreshJob",
    "ResultSet",
    "ScanGroupExecutor",
    "SessionConfig",
    "SessionLog",
    "SessionSimulator",
    "Table",
    "all_dashboards",
    "approximate_execute",
    "available_engines",
    "create_engine",
    "eva_metrics",
    "export_session",
    "generate_dataset",
    "get_template",
    "get_workflow",
    "load_dashboard",
    "normalize_star",
    "parse_query",
    "progressive_execute",
    "refresh_many",
    "replay_log",
    "run_user_study",
    "table3_matrix",
    "translate",
]
