"""SIMBA: a SImulation-BAsed benchmark for interactive data exploration.

Reproduction of "An Adaptive Benchmark for Modeling User Exploration of
Large Datasets" (SIGMOD 2025). The package simulates how analysts
explore dashboards toward analysis goals and measures DBMS performance
under the resulting query workloads.

Quickstart — one import, one session, one execution policy::

    import repro

    session = repro.connect(
        "sqlite", policy=repro.ExecutionPolicy.concurrent(4)
    )
    session.load(repro.generate_dataset("customer_service", 10_000, seed=0))
    results = session.refresh("customer_service")
    print(session.stats)

Execution strategy is configured once through
:class:`~repro.execution.ExecutionPolicy` (presets: ``serial()``,
``concurrent(workers)``, ``max_throughput()``, ``auto()``) and travels
the whole stack as a single ``policy=`` value; every policy returns
byte-identical results. The full simulation API
(:class:`SessionSimulator`, :class:`BenchmarkRunner`, …) remains
importable piecewise, and the pre-policy per-knob keywords
(``batch=``/``workers=``/``shards=``/``multiplan=``) keep working
through a deprecation shim.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.algebra import GOAL_TEMPLATES, get_template, translate
from repro.approx import approximate_execute, progressive_execute
from repro.concurrency import RefreshJob, ScanGroupExecutor, refresh_many
from repro.dashboard import DashboardSpec, DashboardState, Interaction
from repro.dashboard.library import DASHBOARD_NAMES, all_dashboards, load_dashboard
from repro.engine import (
    CachedEngine,
    Engine,
    ResultSet,
    Table,
    available_engines,
    create_engine,
)
from repro.execution import ExecutionPolicy
from repro.facade import Session, SessionStats, connect
from repro.logs import eva_metrics, export_session, replay_log
from repro.equivalence import EquivalenceSuite
from repro.harness import BenchmarkConfig, BenchmarkRunner, table3_matrix
from repro.idebench import IDEBenchConfig, IDEBenchSimulator
from repro.simulation import (
    MarkovModel,
    OracleModel,
    SessionConfig,
    SessionLog,
    SessionSimulator,
    get_workflow,
)
from repro.serving import (
    DashboardServer,
    ServingApp,
    ServingClient,
    ServingConfig,
)
from repro.sql import parse_query
from repro.study import run_user_study
from repro.telemetry import ExplainReport, Telemetry
from repro.workload import DATASET_NAMES, generate_dataset
from repro.workload.normalize import DimensionSpec, normalize_star

__version__ = "1.4.0"

__all__ = [
    "BenchmarkConfig",
    "BenchmarkRunner",
    "CachedEngine",
    "DASHBOARD_NAMES",
    "DATASET_NAMES",
    "DashboardServer",
    "DashboardSpec",
    "DashboardState",
    "DimensionSpec",
    "Engine",
    "EquivalenceSuite",
    "ExecutionPolicy",
    "ExplainReport",
    "GOAL_TEMPLATES",
    "IDEBenchConfig",
    "IDEBenchSimulator",
    "Interaction",
    "MarkovModel",
    "OracleModel",
    "RefreshJob",
    "ResultSet",
    "ScanGroupExecutor",
    "ServingApp",
    "ServingClient",
    "ServingConfig",
    "Session",
    "SessionConfig",
    "SessionLog",
    "SessionSimulator",
    "SessionStats",
    "Table",
    "Telemetry",
    "all_dashboards",
    "approximate_execute",
    "available_engines",
    "connect",
    "create_engine",
    "eva_metrics",
    "export_session",
    "generate_dataset",
    "get_template",
    "get_workflow",
    "load_dashboard",
    "normalize_star",
    "parse_query",
    "progressive_execute",
    "refresh_many",
    "replay_log",
    "run_user_study",
    "table3_matrix",
    "translate",
]
