"""AST for the goal algebra (paper Table 1).

Operators:

========== =================== ==============================================
Operator   Notation            Meaning
========== =================== ==============================================
concatenate ``A + B``          Place attributes A and B on the same axis.
filter      ``A - c``          Remove instances of A matching constant c or
                               members of set B (or violating a condition).
map         ``MAP(A, f)``      Apply function f to each instance of A.
aggregate   ``AGG(A, f)``      Aggregate attribute A with function f.
compare     ``B × A``          Opposing axes; group by B when comparing
                               aggregates.
nest        ``B / A``          Hierarchical nesting (inherited from VizQL).
========== =================== ==============================================

Expressions are immutable and overload ``+`` (concatenate), ``-``
(filter), ``*`` (compare), and ``/`` (nest) so goals read like the
paper's notation::

    queue = Attribute("queue", AttributeRole.CATEGORICAL)
    lost = Attribute("lostCalls", AttributeRole.QUANTITATIVE)
    goal = queue * Agg(lost, "count") - FilterCondition(
        Agg(lost, "count"), "<", 2
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import GoalError

#: Aggregate function names the algebra's AGG operator accepts.
AGG_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})

#: Map function names supported by the MAP operator.
MAP_FUNCTIONS = frozenset(
    {"avg", "abs", "round", "year", "month", "day", "hour", "bin"}
)


class AttributeRole(Enum):
    """Data-column role, matching Table 2's Cat./Quant./Temporal labels."""

    CATEGORICAL = "categorical"
    QUANTITATIVE = "quantitative"
    TEMPORAL = "temporal"


class GoalExpression:
    """Base class for algebra nodes, providing the operator sugar."""

    def __add__(self, other: "GoalExpression") -> "Concat":
        return Concat(self, _as_expression(other))

    def __sub__(self, other: object) -> "FilterOp":
        return FilterOp(self, _as_filter_target(other))

    def __mul__(self, other: object) -> "Compare":
        return Compare(self, _as_expression(other))

    def __truediv__(self, other: object) -> "Nest":
        return Nest(self, _as_expression(other))

    def attributes(self) -> list["Attribute"]:
        """All attribute leaves in this expression, left to right."""
        return []


@dataclass(frozen=True)
class Attribute(GoalExpression):
    """A data column with its role."""

    name: str
    role: AttributeRole = AttributeRole.CATEGORICAL

    def attributes(self) -> list["Attribute"]:
        return [self]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(GoalExpression):
    """A constant appearing in a filter."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Agg(GoalExpression):
    """``AGG(A, f)`` — aggregate attribute A by function f."""

    operand: GoalExpression
    func: str

    def __post_init__(self) -> None:
        func = self.func.lower()
        if func not in AGG_FUNCTIONS:
            raise GoalError(
                f"unknown aggregate {self.func!r}; allowed: {sorted(AGG_FUNCTIONS)}"
            )
        object.__setattr__(self, "func", func)

    def attributes(self) -> list[Attribute]:
        return self.operand.attributes()

    def __str__(self) -> str:
        return f"{self.func}({self.operand})"


@dataclass(frozen=True)
class MapOp(GoalExpression):
    """``MAP(A, f)`` — apply a (named) function to each instance of A."""

    operand: GoalExpression
    func: str
    arg: object | None = None  # e.g. bin width for f = "bin"

    def __post_init__(self) -> None:
        func = self.func.lower()
        if func not in MAP_FUNCTIONS:
            raise GoalError(
                f"unknown map function {self.func!r}; allowed: {sorted(MAP_FUNCTIONS)}"
            )
        object.__setattr__(self, "func", func)

    def attributes(self) -> list[Attribute]:
        return self.operand.attributes()

    def __str__(self) -> str:
        if self.arg is not None:
            return f"MAP({self.operand}, {self.func}[{self.arg}])"
        return f"MAP({self.operand}, {self.func})"


@dataclass(frozen=True)
class Ratio(GoalExpression):
    """A quotient of two aggregate expressions (Example 2.2's AGG/AGG)."""

    numerator: GoalExpression
    denominator: GoalExpression

    def attributes(self) -> list[Attribute]:
        return self.numerator.attributes() + self.denominator.attributes()

    def __str__(self) -> str:
        return f"({self.numerator} / {self.denominator})"


@dataclass(frozen=True)
class Concat(GoalExpression):
    """``A + B`` — same axis."""

    left: GoalExpression
    right: GoalExpression

    def attributes(self) -> list[Attribute]:
        return self.left.attributes() + self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Compare(GoalExpression):
    """``B × A`` — opposing axes; group by B when A aggregates."""

    left: GoalExpression
    right: GoalExpression

    def attributes(self) -> list[Attribute]:
        return self.left.attributes() + self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


@dataclass(frozen=True)
class Nest(GoalExpression):
    """``B / A`` — hierarchical nesting (VizQL's nest operator)."""

    outer: GoalExpression
    inner: GoalExpression

    def attributes(self) -> list[Attribute]:
        return self.outer.attributes() + self.inner.attributes()

    def __str__(self) -> str:
        return f"({self.outer} / {self.inner})"


@dataclass(frozen=True)
class FilterCondition(GoalExpression):
    """A predicate used as the right side of the filter operator.

    ``FilterCondition(Agg(lost, "count"), "<", 2)`` denotes removing
    groups whose COUNT is below 2 — the paper's Figure 3 example
    ``- {!countlostCalls < 2}``.
    """

    subject: GoalExpression
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in {"=", "!=", "<", "<=", ">", ">="}:
            raise GoalError(f"unknown comparison operator {self.op!r}")

    def attributes(self) -> list[Attribute]:
        return self.subject.attributes()

    def __str__(self) -> str:
        return f"{{{self.subject} {self.op} {self.value!r}}}"


@dataclass(frozen=True)
class FilterOp(GoalExpression):
    """``A - c`` / ``A - B`` / ``A - {condition}`` — element removal."""

    operand: GoalExpression
    removed: GoalExpression

    def attributes(self) -> list[Attribute]:
        return self.operand.attributes() + self.removed.attributes()

    def __str__(self) -> str:
        return f"({self.operand} - {self.removed})"


def _as_expression(value: object) -> GoalExpression:
    if isinstance(value, GoalExpression):
        return value
    return Const(value)


def _as_filter_target(value: object) -> GoalExpression:
    if isinstance(value, GoalExpression):
        return value
    if isinstance(value, (set, frozenset, list, tuple)):
        # A set of removed members becomes a disjunction of constants;
        # we model it as a Concat chain of Consts for display purposes.
        items = sorted(value, key=repr)
        if not items:
            raise GoalError("cannot filter by an empty set")
        expr: GoalExpression = Const(items[0])
        for item in items[1:]:
            expr = Concat(expr, Const(item))
        return expr
    return Const(value)
