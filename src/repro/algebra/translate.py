"""Translation from goal-algebra expressions to SQL goal queries (§2.3).

The translator recognizes the expression shapes produced by the six
templates (and reasonable compositions of them) and emits one
:class:`~repro.sql.ast.Query` per goal:

- ``Compare(C, Agg(Q, f))``        -> ``SELECT C, f(Q) ... GROUP BY C``
- ``Compare(MapOp(T, day), ...)``  -> grouped by ``DAY(T)``
- ``Concat(Q1, Q2)``               -> ``SELECT Q1, Q2`` (correlation)
- ``... - FilterCondition(...)``   -> ``HAVING``/``WHERE`` clause
- ``... - Const(c)``               -> ``WHERE attr != c``
- ``Ratio``/``MapOp(avg)``         -> arithmetic select expression
- ``Nest(A, B)``                   -> both on the group-by axis

Translation is deliberately *restrictive*: the formative study found
that only certain query shapes represent valid goals, so unrecognized
compositions raise :class:`~repro.errors.GoalError` rather than
guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import (
    Agg,
    Attribute,
    AttributeRole,
    Compare,
    Concat,
    Const,
    FilterCondition,
    FilterOp,
    GoalExpression,
    MapOp,
    Nest,
    Ratio,
)
from repro.errors import GoalError
from repro.sql.ast import (
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)

#: Algebra aggregate names -> SQL function names.
_AGG_SQL = {
    "count": "COUNT",
    "sum": "SUM",
    "avg": "AVG",
    "min": "MIN",
    "max": "MAX",
}

#: Temporal map functions usable as grouping keys.
_TEMPORAL_MAPS = {"year", "month", "day", "hour"}


@dataclass(frozen=True)
class GoalQuery:
    """A translated goal: SQL query plus provenance."""

    query: Query
    expression: GoalExpression
    template: str | None = None
    description: str = ""

    def __str__(self) -> str:
        from repro.sql.formatter import format_query

        return format_query(self.query)


def translate(
    expression: GoalExpression,
    table: str,
    template: str | None = None,
    description: str = "",
) -> GoalQuery:
    """Translate a goal expression into its SQL goal query."""
    state = _TranslationState()
    _translate_node(expression, state)
    query = state.build(table)
    return GoalQuery(
        query=query,
        expression=expression,
        template=template,
        description=description,
    )


@dataclass
class _TranslationState:
    """Accumulates SELECT/GROUP BY/WHERE/HAVING pieces during traversal."""

    group_keys: list[Expression] = field(default_factory=list)
    measures: list[SelectItem] = field(default_factory=list)
    where: Expression | None = None
    having: Expression | None = None

    def add_group_key(self, expr: Expression) -> None:
        if expr not in self.group_keys:
            self.group_keys.append(expr)

    def add_measure(self, item: SelectItem) -> None:
        if item not in self.measures:
            self.measures.append(item)

    def add_where(self, predicate: Expression) -> None:
        if self.where is None:
            self.where = predicate
        else:
            self.where = BinaryOp("AND", self.where, predicate)

    def add_having(self, predicate: Expression) -> None:
        if self.having is None:
            self.having = predicate
        else:
            self.having = BinaryOp("AND", self.having, predicate)

    def build(self, table: str) -> Query:
        select: list[SelectItem] = [
            SelectItem(key) for key in self.group_keys
        ]
        select.extend(self.measures)
        if not select:
            raise GoalError("goal expression produced an empty SELECT list")
        group_by = tuple(self.group_keys) if self.measures else ()
        # A goal with keys but no measures is a plain projection
        # (e.g. correlation goals pairing two quantitative columns).
        return Query(
            select=tuple(select),
            from_table=TableRef(table),
            where=self.where,
            group_by=group_by,
            having=self.having,
        )


def _translate_node(node: GoalExpression, state: _TranslationState) -> None:
    if isinstance(node, Compare):
        _translate_axis(node.left, state, axis="key")
        _translate_axis(node.right, state, axis="measure")
        return
    if isinstance(node, Nest):
        _translate_axis(node.outer, state, axis="key")
        _translate_node(node.inner, state)
        return
    if isinstance(node, FilterOp):
        _translate_node(node.operand, state)
        _apply_filter(node, state)
        return
    if isinstance(node, Concat):
        for part in _concat_parts(node):
            _translate_axis(part, state, axis="auto")
        return
    _translate_axis(node, state, axis="auto")


def _translate_axis(
    node: GoalExpression, state: _TranslationState, axis: str
) -> None:
    if isinstance(node, Concat):
        for part in _concat_parts(node):
            _translate_axis(part, state, axis)
        return
    if isinstance(node, Compare) or isinstance(node, Nest):
        _translate_node(node, state)
        return
    if isinstance(node, FilterOp):
        _translate_axis(node.operand, state, axis)
        _apply_filter(node, state)
        return
    if isinstance(node, Attribute):
        expr = Column(node.name)
        if axis == "key" or (
            axis == "auto"
            and node.role in (AttributeRole.CATEGORICAL, AttributeRole.TEMPORAL)
        ):
            state.add_group_key(expr)
        else:
            state.add_measure(SelectItem(expr))
        return
    if isinstance(node, (Agg, MapOp, Ratio)):
        expr = _value_expression(node)
        if (
            isinstance(node, MapOp)
            and node.func in _TEMPORAL_MAPS
            and axis in ("key", "auto")
        ):
            state.add_group_key(expr)
        elif axis == "key":
            state.add_group_key(expr)
        else:
            state.add_measure(SelectItem(expr, _suggest_alias(node)))
        return
    if isinstance(node, Const):
        raise GoalError(
            f"constant {node} cannot stand alone on an axis; use a filter"
        )
    raise GoalError(f"cannot translate algebra node {type(node).__name__}")


def _value_expression(node: GoalExpression) -> Expression:
    """Translate a value-producing algebra node to a SQL expression."""
    if isinstance(node, Attribute):
        return Column(node.name)
    if isinstance(node, Const):
        return Literal(node.value)  # type: ignore[arg-type]
    if isinstance(node, Agg):
        inner = node.operand
        if node.func == "count" and isinstance(inner, Attribute):
            return FuncCall("COUNT", (Column(inner.name),))
        if node.func == "count" and isinstance(inner, Const):
            return FuncCall("COUNT", (Star(),))
        return FuncCall(_AGG_SQL[node.func], (_value_expression(inner),))
    if isinstance(node, Ratio):
        return BinaryOp(
            "/",
            _value_expression(node.numerator),
            _value_expression(node.denominator),
        )
    if isinstance(node, MapOp):
        if node.func == "avg":
            # MAP(x, f_avg) used over a ratio of aggregates is already an
            # average; the map is a no-op at the SQL level (Example 2.2).
            return _value_expression(node.operand)
        if node.func == "bin":
            width = node.arg if node.arg is not None else 10
            return FuncCall(
                "BIN",
                (_value_expression(node.operand), Literal(width)),
            )
        if node.func in _TEMPORAL_MAPS:
            return FuncCall(
                node.func.upper(), (_value_expression(node.operand),)
            )
        return FuncCall(node.func.upper(), (_value_expression(node.operand),))
    raise GoalError(
        f"node {type(node).__name__} is not a value expression"
    )


def _apply_filter(node: FilterOp, state: _TranslationState) -> None:
    removed = node.removed
    if isinstance(removed, FilterCondition):
        predicate = BinaryOp(
            removed.op,
            _value_expression(removed.subject),
            Literal(removed.value),  # type: ignore[arg-type]
        )
        # The filter semantics are *removal*: "- {agg < 2}" keeps groups
        # where NOT(agg < 2). Negate by flipping the comparison.
        predicate = _negate_comparison(predicate)
        if _mentions_aggregate(removed.subject):
            state.add_having(predicate)
        else:
            state.add_where(predicate)
        return
    constants = _filter_constants(removed)
    if constants:
        subject = _filter_subject(node.operand)
        from repro.sql.ast import InList

        state.add_where(
            InList(
                subject,
                tuple(Literal(c) for c in constants),  # type: ignore[arg-type]
                negated=True,
            )
        )
        return
    raise GoalError(f"unsupported filter target {removed}")


def _negate_comparison(predicate: BinaryOp) -> BinaryOp:
    flips = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
    return BinaryOp(flips[predicate.op], predicate.left, predicate.right)


def _mentions_aggregate(node: GoalExpression) -> bool:
    if isinstance(node, Agg):
        return True
    if isinstance(node, (MapOp,)):
        return _mentions_aggregate(node.operand)
    if isinstance(node, Ratio):
        return _mentions_aggregate(node.numerator) or _mentions_aggregate(
            node.denominator
        )
    if isinstance(node, (Concat, Compare)):
        return _mentions_aggregate(node.left) or _mentions_aggregate(
            node.right
        )
    return False


def _filter_constants(node: GoalExpression) -> list[object]:
    if isinstance(node, Const):
        return [node.value]
    if isinstance(node, Concat):
        return _filter_constants(node.left) + _filter_constants(node.right)
    return []


def _filter_subject(node: GoalExpression) -> Expression:
    """The column a constant-removal filter applies to.

    ``A - c`` removes instances of A matching c, so the subject is the
    first attribute of the operand.
    """
    attributes = node.attributes()
    if not attributes:
        raise GoalError("filter operand has no attribute to filter on")
    return Column(attributes[0].name)


def _concat_parts(node: Concat) -> list[GoalExpression]:
    parts: list[GoalExpression] = []
    for side in (node.left, node.right):
        if isinstance(side, Concat):
            parts.extend(_concat_parts(side))
        else:
            parts.append(side)
    return parts


def _suggest_alias(node: GoalExpression) -> str | None:
    """Readable alias for a measure (e.g. ``count_lostCalls``)."""
    if isinstance(node, Agg):
        attrs = node.attributes()
        if attrs:
            return f"{node.func}_{attrs[0].name}"
        return node.func
    if isinstance(node, Ratio):
        return "ratio"
    if isinstance(node, MapOp):
        inner = _suggest_alias(node.operand)
        if node.func == "avg":
            return inner
        if inner:
            return f"{node.func}_{inner}"
    return None
