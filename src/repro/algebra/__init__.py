"""Goal algebra: expressing user exploration goals (paper §2).

The algebra extends VizQL's cross/nest/concatenate operators with
dedicated filter, map, and aggregate operators (Table 1). Goal
expressions translate into SQL goal queries (§2.3), and six reusable
templates cover the exploration-goal taxonomy of Battle & Heer
(Table 2).
"""

from repro.algebra.expressions import (
    Agg,
    Attribute,
    AttributeRole,
    Compare,
    Concat,
    Const,
    FilterCondition,
    FilterOp,
    GoalExpression,
    MapOp,
    Nest,
    Ratio,
)
from repro.algebra.templates import (
    GOAL_TEMPLATES,
    GoalTemplate,
    TemplateParameterError,
    get_template,
    instantiate_for_schema,
)
from repro.algebra.translate import GoalQuery, translate

__all__ = [
    "Agg",
    "Attribute",
    "AttributeRole",
    "Compare",
    "Concat",
    "Const",
    "FilterCondition",
    "FilterOp",
    "GOAL_TEMPLATES",
    "GoalExpression",
    "GoalQuery",
    "GoalTemplate",
    "MapOp",
    "Nest",
    "Ratio",
    "TemplateParameterError",
    "get_template",
    "instantiate_for_schema",
    "translate",
]
