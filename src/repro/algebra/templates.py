"""The six reusable goal templates of paper Table 2.

Each template binds a goal type from the visualization/HCI literature
(Battle & Heer's taxonomy) to an algebra expression shape and the data
column roles it requires. Templates can be instantiated explicitly with
named attributes, or automatically against a table schema (the harness
does this when running workflows across dashboards with different
datasets).

=============================== ========================== ====================
Template                        Algebra shape              Requirements
=============================== ========================== ====================
Analyzing Spread                ``C × agg(Q)``             1 Cat, 1 Quant
Filtering                       ``- ()``                   1+ Cat, 1 Quant
Finding Correlations            ``C + C``                  2 Quant
Identification                  ``C × (max(Q) + min(Q))``  1 Cat, 1+ Quant
Measuring Differences           ``C × agg(Q)``             1 Cat, 1 Quant
Observing Temporal Patterns     ``DAY(T) × agg(Q)``        1 Temporal, 1 Quant
=============================== ========================== ====================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.algebra.expressions import (
    Agg,
    Attribute,
    AttributeRole,
    Compare,
    Concat,
    FilterCondition,
    FilterOp,
    GoalExpression,
    MapOp,
)
from repro.algebra.translate import GoalQuery, translate
from repro.engine.table import Schema
from repro.errors import GoalError


class TemplateParameterError(GoalError):
    """Raised when a template cannot be instantiated with the given data."""


@dataclass(frozen=True)
class AttributeRequirement:
    """How many columns of each role a template needs."""

    categorical: int = 0
    quantitative: int = 0
    temporal: int = 0

    def satisfiable(self, schema: Schema) -> bool:
        return (
            len(schema.categorical_columns()) >= self.categorical
            and len(schema.numeric_columns()) >= self.quantitative
            and len(schema.temporal_columns()) >= self.temporal
        )


@dataclass(frozen=True)
class GoalTemplate:
    """One reusable goal template (a row of Table 2)."""

    name: str
    goal_type: str
    generalization: str
    algebra_shape: str
    requires: AttributeRequirement
    builder: Callable[..., GoalExpression]

    def build(self, **params: object) -> GoalExpression:
        """Build the algebra expression from named attributes."""
        return self.builder(**params)

    def instantiate(
        self, table: str, **params: object
    ) -> GoalQuery:
        """Build and translate to a SQL goal query in one step."""
        expression = self.build(**params)
        return translate(
            expression,
            table,
            template=self.name,
            description=self.generalization,
        )

    def instantiate_for_schema(
        self,
        table: str,
        schema: Schema,
        rng: random.Random | None = None,
        usable_columns: set[str] | None = None,
    ) -> GoalQuery:
        """Automatically pick suitable columns from ``schema``.

        Parameters
        ----------
        usable_columns:
            When given, restrict the choice to these columns (the harness
            passes the set of columns the dashboard actually exposes, so
            generated goals are achievable).
        """
        rng = rng or random.Random(0)
        categorical = _usable(schema.categorical_columns(), usable_columns)
        quantitative = _usable(schema.numeric_columns(), usable_columns)
        temporal = _usable(schema.temporal_columns(), usable_columns)
        need = self.requires
        if (
            len(categorical) < need.categorical
            or len(quantitative) < need.quantitative
            or len(temporal) < need.temporal
        ):
            raise TemplateParameterError(
                f"template {self.name!r} needs {need} but schema offers "
                f"{len(categorical)} categorical / {len(quantitative)} "
                f"quantitative / {len(temporal)} temporal usable columns"
            )
        cats = rng.sample(
            categorical, max(need.categorical, 1 if categorical else 0)
        )
        quants = rng.sample(quantitative, max(need.quantitative, 1))
        temps = rng.sample(temporal, need.temporal) if need.temporal else []
        params = _parameters_for(self.name, cats, quants, temps, rng)
        return self.instantiate(table, **params)


def _usable(columns: list[str], usable: set[str] | None) -> list[str]:
    if usable is None:
        return columns
    return [c for c in columns if c in usable]


# ---------------------------------------------------------------------------
# Template builders
# ---------------------------------------------------------------------------


def _analyzing_spread(
    categorical: str, quantitative: str, agg: str = "count", threshold: object = None
) -> GoalExpression:
    """``C × agg(Q)``, optionally filtered by an aggregate condition.

    With a threshold this reproduces the paper's Figure 3 goal:
    "Which queues have experienced more than 1 lost call?" ->
    ``Q × count(lostCalls) - {count(lostCalls) < 2}``.
    """
    cat = Attribute(categorical, AttributeRole.CATEGORICAL)
    quant = Attribute(quantitative, AttributeRole.QUANTITATIVE)
    expression: GoalExpression = Compare(cat, Agg(quant, agg))
    if threshold is not None:
        expression = FilterOp(
            expression,
            FilterCondition(Agg(quant, agg), "<", threshold),
        )
    return expression


def _filtering(
    categorical: str,
    quantitative: str,
    agg: str = "sum",
    comparison: str = ">",
    constant: object = 0,
) -> GoalExpression:
    """Which categories have an aggregate that is [comparison] [constant]?"""
    cat = Attribute(categorical, AttributeRole.CATEGORICAL)
    quant = Attribute(quantitative, AttributeRole.QUANTITATIVE)
    # Keep groups satisfying agg(Q) [comparison] constant: remove the rest.
    keep_op = comparison
    negations = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
    remove_op = negations[keep_op]
    return FilterOp(
        Compare(cat, Agg(quant, agg)),
        FilterCondition(Agg(quant, agg), remove_op, constant),
    )


def _finding_correlations(
    quantitative1: str,
    quantitative2: str,
    modulator: str | None = None,
    agg1: str = "sum",
    agg2: str = "sum",
) -> GoalExpression:
    """``C + C`` — pair two numeric attributes, optionally per-modulator.

    With a modulator this is the paper's Example 2.3 shape::

        SELECT hour, COUNT(*) AS call_volume, SUM(abandoned) ...
        GROUP BY hour
    """
    left = Attribute(quantitative1, AttributeRole.QUANTITATIVE)
    right = Attribute(quantitative2, AttributeRole.QUANTITATIVE)
    if modulator is None:
        return Concat(left, right)
    mod = Attribute(modulator, AttributeRole.CATEGORICAL)
    return Compare(mod, Concat(Agg(left, agg1), Agg(right, agg2)))


def _identification(
    categorical: str, quantitative: str
) -> GoalExpression:
    """``C × (max(Q) + min(Q))`` — which member takes the max/min."""
    cat = Attribute(categorical, AttributeRole.CATEGORICAL)
    quant = Attribute(quantitative, AttributeRole.QUANTITATIVE)
    return Compare(
        cat, Concat(Agg(quant, "max"), Agg(quant, "min"))
    )


def _measuring_differences(
    categorical: str, quantitative: str, agg: str = "avg"
) -> GoalExpression:
    """``C × agg(Q)`` — differences of Q across members of C."""
    cat = Attribute(categorical, AttributeRole.CATEGORICAL)
    quant = Attribute(quantitative, AttributeRole.QUANTITATIVE)
    return Compare(cat, Agg(quant, agg))


def _temporal_patterns(
    temporal: str, quantitative: str, agg: str = "sum", unit: str = "day"
) -> GoalExpression:
    """``DAY(T) × agg(Q)`` — effect of time on Q."""
    time_attr = Attribute(temporal, AttributeRole.TEMPORAL)
    quant = Attribute(quantitative, AttributeRole.QUANTITATIVE)
    return Compare(MapOp(time_attr, unit), Agg(quant, agg))


def _parameters_for(
    name: str,
    cats: list[str],
    quants: list[str],
    temps: list[str],
    rng: random.Random,
) -> dict[str, object]:
    """Template-specific parameter assembly for auto-instantiation."""
    if name == "analyzing_spread":
        return {
            "categorical": cats[0],
            "quantitative": quants[0],
            "agg": "count",
            "threshold": 2,
        }
    if name == "filtering":
        return {
            "categorical": cats[0],
            "quantitative": quants[0],
            "agg": rng.choice(["sum", "count"]),
            "comparison": ">",
            "constant": 0,
        }
    if name == "finding_correlations":
        params: dict[str, object] = {
            "quantitative1": quants[0],
            "quantitative2": quants[1],
        }
        if cats:
            # Prefer the paper's modulated form (Example 2.3): grouped
            # aggregates of the two attributes, which dashboards can emit.
            params["modulator"] = cats[0]
            params["agg1"] = "sum"
            params["agg2"] = "sum"
        return params
    if name == "identification":
        return {"categorical": cats[0], "quantitative": quants[0]}
    if name == "measuring_differences":
        return {
            "categorical": cats[0],
            "quantitative": quants[0],
            "agg": rng.choice(["avg", "sum"]),
        }
    if name == "temporal_patterns":
        return {
            "temporal": temps[0],
            "quantitative": quants[0],
            "agg": "sum",
            "unit": rng.choice(["day", "hour"]),
        }
    raise TemplateParameterError(f"unknown template {name!r}")


#: Registry of the six Table 2 templates, keyed by snake_case name.
GOAL_TEMPLATES: dict[str, GoalTemplate] = {
    "analyzing_spread": GoalTemplate(
        name="analyzing_spread",
        goal_type="Characterizing Data Distributions and Relationships",
        generalization=(
            "Which member of [categorical attribute] has the largest "
            "range/spread of [quantitative attribute]?"
        ),
        algebra_shape="C x agg(Q)",
        requires=AttributeRequirement(categorical=1, quantitative=1),
        builder=_analyzing_spread,
    ),
    "filtering": GoalTemplate(
        name="filtering",
        goal_type="Understanding Data Correctness and Semantics",
        generalization=(
            "Which [categorical attributes] have an [aggregation] of "
            "[quantitative attribute] that is [comparison operator] "
            "[constant] at any point in time?"
        ),
        algebra_shape="- ()",
        requires=AttributeRequirement(categorical=1, quantitative=1),
        builder=_filtering,
    ),
    "finding_correlations": GoalTemplate(
        name="finding_correlations",
        goal_type="Characterizing Data Distributions and Relationships",
        generalization=(
            "Is there a strong correlation between [numerical attribute] "
            "and [numerical attribute]?"
        ),
        algebra_shape="C + C",
        requires=AttributeRequirement(quantitative=2),
        builder=_finding_correlations,
    ),
    "identification": GoalTemplate(
        name="identification",
        goal_type="Analyzing Causal Relationships",
        generalization=(
            "Which [categorical attribute] consumes the [max OR min] of "
            "[ordered list of quantitative attributes OR aggregate attributes]?"
        ),
        algebra_shape="C x (max(Q) + min(Q))",
        requires=AttributeRequirement(categorical=1, quantitative=1),
        builder=_identification,
    ),
    "measuring_differences": GoalTemplate(
        name="measuring_differences",
        goal_type="Hypothesis Formulation and Verification",
        generalization=(
            "Are there differences in the value of [quantitative attribute] "
            "between the members of [categorical attribute]?"
        ),
        algebra_shape="C x agg(Q)",
        requires=AttributeRequirement(categorical=1, quantitative=1),
        builder=_measuring_differences,
    ),
    "temporal_patterns": GoalTemplate(
        name="temporal_patterns",
        goal_type="Characterizing Data Distributions and Relationships",
        generalization=(
            "How does change in [temporal attribute] affect patterns in "
            "[quantitative attribute OR aggregate attribute], if at all?"
        ),
        algebra_shape="DAY(T) x agg(Q)",
        requires=AttributeRequirement(temporal=1, quantitative=1),
        builder=_temporal_patterns,
    ),
}


def get_template(name: str) -> GoalTemplate:
    """Look up a template by name."""
    try:
        return GOAL_TEMPLATES[name]
    except KeyError:
        raise TemplateParameterError(
            f"unknown template {name!r}; available: {sorted(GOAL_TEMPLATES)}"
        ) from None


def instantiate_for_schema(
    template_name: str,
    table: str,
    schema: Schema,
    rng: random.Random | None = None,
    usable_columns: set[str] | None = None,
) -> GoalQuery:
    """Convenience wrapper: look up + auto-instantiate a template."""
    return get_template(template_name).instantiate_for_schema(
        table, schema, rng, usable_columns
    )
