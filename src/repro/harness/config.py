"""Benchmark configuration (paper Table 3).

The paper's experiments permute three parameters — dataset size
(100K/1M/10M rows), goal-template sequence (Shneiderman, Battle & Heer,
Crossfilter), and dashboard (the six of Figure 6) — against four DBMSs,
with 8 runs per combination. :func:`table3_matrix` enumerates exactly
that grid; :class:`BenchmarkConfig` lets callers scale any axis down
(laptop-scale defaults) or up (paper-scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dashboard.library import DASHBOARD_NAMES
from repro.engine.registry import available_engines
from repro.errors import ConfigError
from repro.simulation.session import SessionConfig
from repro.simulation.workflows import WORKFLOWS

#: The paper's dataset sizes (Table 3).
PAPER_SIZES: dict[str, int] = {
    "100K": 100_000,
    "1M": 1_000_000,
    "10M": 10_000_000,
}

#: Laptop-scale default sizes preserving the 1:10:100 ratio.
DEFAULT_SIZES: dict[str, int] = {
    "3K": 3_000,
    "30K": 30_000,
}


@dataclass(frozen=True)
class BenchmarkConfig:
    """One benchmark experiment: the axes to permute and session tuning."""

    dashboards: tuple[str, ...] = tuple(DASHBOARD_NAMES)
    workflows: tuple[str, ...] = ("shneiderman", "battle_heer", "crossfilter")
    engines: tuple[str, ...] = ("rowstore", "vectorstore", "matstore", "sqlite")
    sizes: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_SIZES)
    )
    runs: int = 3
    seed: int = 0
    #: Rows in the reference table used for goal-coverage logic (kept
    #: small so planning cost does not scale with the measured dataset).
    reference_rows: int = 2_000
    #: Execute each interaction's fan-out through the shared-scan batch
    #: optimizer instead of one engine call per query (the CLI's
    #: ``--batch`` / ``--no-batch``). ``True`` forces batch mode on the
    #: session; ``False`` (the default) defers to ``session.batch``.
    #: After construction this field always mirrors the session flag —
    #: the session config is the single source of truth downstream.
    batch: bool = False
    #: Worker-pool width (the CLI's ``--workers``). Two effects: the
    #: runner overlaps independent engine x run grid cells over a pool
    #: of this size, and each session's own fan-outs default to the
    #: same width (``session.workers``, when not set explicitly).
    #: Setting only ``session.workers`` does *not* turn on cell
    #: overlap — intra-session and cross-cell concurrency stay
    #: independently controllable. ``1`` is the sequential
    #: pre-concurrency path; results are identical for every value —
    #: only wall-clock and the *measured* durations change (overlapped
    #: queries contend for cores).
    workers: int = 1
    #: Row-range shards per scan group (the CLI's ``--shards``). A
    #: purely per-session setting: each batched fan-out's shardable
    #: scan groups split into this many per-shard scan tasks whose
    #: partial aggregates roll up into the final results
    #: (:mod:`repro.sharding`). Requires batch mode to have any
    #: effect; ``1`` is the exact pre-sharding path and results are
    #: identical for every value.
    shards: int = 1
    #: Combined-pass evaluation of unfiltered scan groups (the CLI's
    #: ``--multiplan`` / ``--no-multiplan``): each batched fan-out's
    #: unfiltered groups — the initial dashboard render — compute all
    #: their group-bys in one engine pass
    #: (:mod:`repro.engine.multiplan`). A per-session setting that
    #: requires batch mode to have any effect; ``False`` (the default)
    #: is the exact pre-multiplan path and results are identical either
    #: way. After construction this field mirrors ``session.multiplan``
    #: — the session config is the single source of truth downstream.
    multiplan: bool = False
    #: Fixed-duration sessions by default: each goal segment runs its
    #: full step budget even if the goal completes early, matching the
    #: paper's time-boxed exploration studies and keeping per-dashboard
    #: workloads comparable in size.
    session: SessionConfig = field(
        default_factory=lambda: SessionConfig(
            run_to_max=True, max_steps_per_goal=12, stall_limit=8
        )
    )

    def __post_init__(self) -> None:
        known_engines = set(available_engines())
        for engine in self.engines:
            if engine not in known_engines:
                raise ConfigError(f"unknown engine {engine!r}")
        for workflow in self.workflows:
            if workflow not in WORKFLOWS:
                raise ConfigError(f"unknown workflow {workflow!r}")
        for dashboard in self.dashboards:
            if dashboard not in DASHBOARD_NAMES:
                raise ConfigError(f"unknown dashboard {dashboard!r}")
        if self.runs < 1:
            raise ConfigError("runs must be >= 1")
        if not self.sizes:
            raise ConfigError("at least one dataset size is required")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        from dataclasses import replace

        if self.batch and not self.session.batch:
            object.__setattr__(
                self, "session", replace(self.session, batch=True)
            )
        if self.workers > 1 and self.session.workers == 1:
            object.__setattr__(
                self, "session", replace(self.session, workers=self.workers)
            )
        if self.shards > 1 and self.session.shards == 1:
            object.__setattr__(
                self, "session", replace(self.session, shards=self.shards)
            )
        if self.multiplan and not self.session.multiplan:
            object.__setattr__(
                self, "session", replace(self.session, multiplan=True)
            )
        # ``batch`` always mirrors the session flag (single source of
        # truth downstream); ``workers`` stays the runner's own cell
        # concurrency — an explicit ``session.workers`` only affects
        # the sessions themselves; ``shards`` and ``multiplan``
        # likewise mirror into the sessions and nothing else.
        object.__setattr__(self, "batch", self.session.batch)
        object.__setattr__(self, "shards", self.session.shards)
        object.__setattr__(self, "multiplan", self.session.multiplan)

    @classmethod
    def paper_scale(cls) -> "BenchmarkConfig":
        """The full Table 3 grid at the paper's sizes (8 runs)."""
        return cls(sizes=dict(PAPER_SIZES), runs=8)

    @classmethod
    def smoke(cls) -> "BenchmarkConfig":
        """A minimal configuration for CI smoke tests."""
        return cls(
            dashboards=("customer_service",),
            workflows=("shneiderman",),
            engines=("vectorstore",),
            sizes={"1K": 1_000},
            runs=1,
            reference_rows=1_000,
        )


def table3_matrix(config: BenchmarkConfig | None = None) -> list[dict[str, object]]:
    """Enumerate the experiment grid as rows (the content of Table 3)."""
    config = config or BenchmarkConfig()
    rows: list[dict[str, object]] = []
    for size_label, num_rows in sorted(
        config.sizes.items(), key=lambda kv: kv[1]
    ):
        for workflow in config.workflows:
            for dashboard in config.dashboards:
                rows.append(
                    {
                        "dataset_size": size_label,
                        "rows": num_rows,
                        "goal_sequence": workflow,
                        "dashboard": dashboard,
                    }
                )
    return rows
