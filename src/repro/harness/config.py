"""Benchmark configuration (paper Table 3).

The paper's experiments permute three parameters — dataset size
(100K/1M/10M rows), goal-template sequence (Shneiderman, Battle & Heer,
Crossfilter), and dashboard (the six of Figure 6) — against four DBMSs,
with 8 runs per combination. :func:`table3_matrix` enumerates exactly
that grid; :class:`BenchmarkConfig` lets callers scale any axis down
(laptop-scale defaults) or up (paper-scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dashboard.library import DASHBOARD_NAMES
from repro.engine.registry import available_engines
from repro.errors import ConfigError
from repro.simulation.session import SessionConfig
from repro.simulation.workflows import WORKFLOWS

#: The paper's dataset sizes (Table 3).
PAPER_SIZES: dict[str, int] = {
    "100K": 100_000,
    "1M": 1_000_000,
    "10M": 10_000_000,
}

#: Laptop-scale default sizes preserving the 1:10:100 ratio.
DEFAULT_SIZES: dict[str, int] = {
    "3K": 3_000,
    "30K": 30_000,
}


@dataclass(frozen=True)
class BenchmarkConfig:
    """One benchmark experiment: the axes to permute and session tuning."""

    dashboards: tuple[str, ...] = tuple(DASHBOARD_NAMES)
    workflows: tuple[str, ...] = ("shneiderman", "battle_heer", "crossfilter")
    engines: tuple[str, ...] = ("rowstore", "vectorstore", "matstore", "sqlite")
    sizes: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_SIZES)
    )
    runs: int = 3
    seed: int = 0
    #: Rows in the reference table used for goal-coverage logic (kept
    #: small so planning cost does not scale with the measured dataset).
    reference_rows: int = 2_000
    #: The execution policy for the whole experiment: an
    #: :class:`~repro.execution.ExecutionPolicy` (or preset name, the
    #: CLI's ``--policy``). Two effects, matching the old per-knob
    #: semantics: ``policy.workers`` also sizes the runner's pool for
    #: overlapping independent engine x run grid cells, and the policy
    #: merges knob-wise into ``session.policy`` (an explicitly
    #: configured session keeps its own settings — the session config
    #: stays the single source of truth downstream). ``None`` defers
    #: entirely to the session. After construction this field holds
    #: the sessions' effective policy; results are identical for every
    #: policy — only wall-clock and the *measured* durations change
    #: (overlapped queries contend for cores).
    policy: object = None
    #: Deprecated (use ``policy``): shared-scan batch execution (the
    #: CLI's ``--batch`` / ``--no-batch``). Mirrors ``session.batch``
    #: after construction.
    batch: bool = False
    #: Deprecated (use ``policy``): worker-pool width (the CLI's
    #: ``--workers``) — grid-cell overlap plus the sessions' default
    #: fan-out width. Setting only ``session.workers`` does *not* turn
    #: on cell overlap; this field keeps the runner's own value.
    workers: int = 1
    #: Deprecated (use ``policy``): row-range shards per scan group
    #: (the CLI's ``--shards``). Mirrors ``session.shards`` after
    #: construction.
    shards: int = 1
    #: Deprecated (use ``policy``): combined-pass evaluation of
    #: unfiltered scan groups (the CLI's ``--multiplan``). Mirrors
    #: ``session.multiplan`` after construction.
    multiplan: bool = False
    #: Fixed-duration sessions by default: each goal segment runs its
    #: full step budget even if the goal completes early, matching the
    #: paper's time-boxed exploration studies and keeping per-dashboard
    #: workloads comparable in size.
    session: SessionConfig = field(
        default_factory=lambda: SessionConfig(
            run_to_max=True, max_steps_per_goal=12, stall_limit=8
        )
    )

    #: The deprecated knob fields' defaults; "set" means "differs".
    _KNOB_DEFAULTS = {
        "batch": False, "workers": 1, "shards": 1, "multiplan": False,
    }

    def __post_init__(self) -> None:
        known_engines = set(available_engines())
        for engine in self.engines:
            if engine not in known_engines:
                raise ConfigError(f"unknown engine {engine!r}")
        for workflow in self.workflows:
            if workflow not in WORKFLOWS:
                raise ConfigError(f"unknown workflow {workflow!r}")
        for dashboard in self.dashboards:
            if dashboard not in DASHBOARD_NAMES:
                raise ConfigError(f"unknown dashboard {dashboard!r}")
        if self.runs < 1:
            raise ConfigError("runs must be >= 1")
        if not self.sizes:
            raise ConfigError("at least one dataset size is required")
        from dataclasses import replace

        from repro.execution import (
            POLICY_KNOBS,
            policy_from_knobs,
            reconcile_config_policy,
        )

        resolved, own = reconcile_config_policy(
            self.policy,
            {k: getattr(self, k) for k in POLICY_KNOBS},
            defaults=self._KNOB_DEFAULTS,
            api="BenchmarkConfig",
        )
        # Merge the config's knobs into the session's, knob-wise: each
        # knob the session left at its default follows the config (the
        # pre-policy mirroring semantics). ``backend`` has no legacy
        # mirror field, so it rides on the resolved policies directly.
        # ``workers`` additionally stays the runner's own cell
        # concurrency.
        merged = {k: getattr(self.session, k) for k in POLICY_KNOBS}
        if own["batch"] and not merged["batch"]:
            merged["batch"] = True
        if own["workers"] > 1 and merged["workers"] == 1:
            merged["workers"] = own["workers"]
        if own["shards"] > 1 and merged["shards"] == 1:
            merged["shards"] = own["shards"]
        if own["multiplan"] and not merged["multiplan"]:
            merged["multiplan"] = True
        backend = self.session.policy.backend
        if backend == "threads" and resolved.backend != "threads":
            backend = resolved.backend
        session_knobs = {k: getattr(self.session, k) for k in POLICY_KNOBS}
        if merged != session_knobs or backend != self.session.policy.backend:
            object.__setattr__(
                self,
                "session",
                replace(
                    self.session,
                    policy=policy_from_knobs(
                        warn_ignored=False, backend=backend, **merged
                    ),
                    **merged,
                ),
            )
        # The session is the single source of truth downstream: this
        # config's policy and knob mirrors all read back from it.
        # ``workers`` keeps the runner's own cell concurrency.
        object.__setattr__(self, "policy", self.session.policy)
        object.__setattr__(self, "batch", self.session.batch)
        object.__setattr__(self, "workers", own["workers"])
        object.__setattr__(self, "shards", self.session.shards)
        object.__setattr__(self, "multiplan", self.session.multiplan)

    @classmethod
    def paper_scale(cls) -> "BenchmarkConfig":
        """The full Table 3 grid at the paper's sizes (8 runs)."""
        return cls(sizes=dict(PAPER_SIZES), runs=8)

    @classmethod
    def smoke(cls) -> "BenchmarkConfig":
        """A minimal configuration for CI smoke tests."""
        return cls(
            dashboards=("customer_service",),
            workflows=("shneiderman",),
            engines=("vectorstore",),
            sizes={"1K": 1_000},
            runs=1,
            reference_rows=1_000,
        )


def table3_matrix(config: BenchmarkConfig | None = None) -> list[dict[str, object]]:
    """Enumerate the experiment grid as rows (the content of Table 3)."""
    config = config or BenchmarkConfig()
    rows: list[dict[str, object]] = []
    for size_label, num_rows in sorted(
        config.sizes.items(), key=lambda kv: kv[1]
    ):
        for workflow in config.workflows:
            for dashboard in config.dashboards:
                rows.append(
                    {
                        "dataset_size": size_label,
                        "rows": num_rows,
                        "goal_sequence": workflow,
                        "dashboard": dashboard,
                    }
                )
    return rows
