"""Benchmark execution: run the configured grid, aggregate durations.

For each (dashboard, workflow, size) cell the runner instantiates a
fresh goal set per run (different seeds — the paper completes 8 runs per
parameter combination), simulates the session once per engine, and
records every query duration. Datasets are generated once per
(dashboard, size) and shared across engines and runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dashboard.library import load_dashboard
from repro.engine.interface import Engine
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.harness.config import BenchmarkConfig
from repro.metrics.report import DurationSummary, duration_summary
from repro.simulation.session import SessionConfig, SessionSimulator
from repro.simulation.workflows import WorkflowNotApplicable, get_workflow
from repro.workload.datasets import generate_dataset


@dataclass
class RunResult:
    """One session's outcome within the benchmark grid."""

    dashboard: str
    workflow: str
    engine: str
    size_label: str
    rows: int
    run_index: int
    durations_ms: list[float]
    interactions: int
    queries: int
    goals_completed: int
    goals_total: int
    empty_results: int

    @property
    def average_duration(self) -> float:
        if not self.durations_ms:
            return 0.0
        return sum(self.durations_ms) / len(self.durations_ms)


@dataclass
class BenchmarkResult:
    """All run results plus aggregation helpers for the figures."""

    config: BenchmarkConfig
    runs: list[RunResult] = field(default_factory=list)
    skipped: list[tuple[str, str, str]] = field(default_factory=list)

    def durations(
        self,
        dashboard: str | None = None,
        workflow: str | None = None,
        engine: str | None = None,
        size_label: str | None = None,
    ) -> list[float]:
        """Pooled query durations matching the given filters."""
        pooled: list[float] = []
        for run in self.runs:
            if dashboard is not None and run.dashboard != dashboard:
                continue
            if workflow is not None and run.workflow != workflow:
                continue
            if engine is not None and run.engine != engine:
                continue
            if size_label is not None and run.size_label != size_label:
                continue
            pooled.extend(run.durations_ms)
        return pooled

    def summaries_by(self, *fields_: str) -> list[DurationSummary]:
        """Duration summaries grouped by the given RunResult fields.

        ``summaries_by("dashboard")`` yields Figure 7's series;
        ``summaries_by("workflow", "dashboard")`` yields Figure 8's.
        """
        groups: dict[tuple[str, ...], list[float]] = {}
        for run in self.runs:
            key = tuple(str(getattr(run, f)) for f in fields_)
            groups.setdefault(key, []).extend(run.durations_ms)
        return [
            duration_summary(" / ".join(key), durations)
            for key, durations in sorted(groups.items())
        ]


class BenchmarkRunner:
    """Executes a :class:`BenchmarkConfig` grid.

    With ``log_directory`` set, every session's log is exported as JSONL
    into that directory (one file per grid cell and run) — the §6.4
    artifact, ready for :mod:`repro.logs` replay and metrics.
    """

    def __init__(
        self,
        config: BenchmarkConfig,
        log_directory: str | None = None,
    ) -> None:
        self.config = config
        self._log_directory = log_directory

    def run(self, progress: bool = False) -> BenchmarkResult:
        """Run the full grid; returns pooled results.

        Workflow/dashboard pairs the workflow cannot target (MyRide vs
        correlation-bearing workflows) are recorded in ``skipped`` —
        the same incompatibility the paper reports in §6.2.3.

        With ``config.workers > 1``, the independent engine x run cells
        of each dashboard overlap across a worker pool: sessions on
        thread-safe engines (SQLite's per-thread connections) run fully
        concurrently, while cells sharing a pure-Python engine
        serialize on that engine's execution slot but overlap with
        every other engine's cells. Cell results are gathered in grid
        order, so ``result.runs`` is identical to a sequential run.
        """
        from repro.concurrency.policy import execution_slot
        from repro.concurrency.sessions import run_tasks

        result = BenchmarkResult(self.config)
        for size_label, num_rows in sorted(
            self.config.sizes.items(), key=lambda kv: kv[1]
        ):
            for dashboard_name in self.config.dashboards:
                spec = load_dashboard(dashboard_name)
                table = generate_dataset(
                    dashboard_name, num_rows, seed=self.config.seed
                )
                reference = self._reference_table(dashboard_name, num_rows)
                engines = {
                    name: self._loaded_engine(name, table)
                    for name in self.config.engines
                }
                cells = []
                for workflow_name in self.config.workflows:
                    workflow = get_workflow(workflow_name)
                    for run_index in range(self.config.runs):
                        rng = random.Random(
                            hash((self.config.seed, workflow_name,
                                  dashboard_name, run_index)) & 0x7FFFFFFF
                        )
                        try:
                            goals = workflow.instantiate_for_dashboard(
                                spec, rng
                            )
                        except WorkflowNotApplicable:
                            result.skipped.append(
                                (dashboard_name, workflow_name, size_label)
                            )
                            break
                        for engine_name, engine in engines.items():
                            cells.append(self._cell_task(
                                execution_slot,
                                spec, table, reference, goals,
                                engine, engine_name,
                                dashboard_name, workflow_name,
                                size_label, num_rows, run_index,
                            ))
                for run_result in run_tasks(
                    cells, workers=self.config.workers
                ):
                    result.runs.append(run_result)
                    if progress:
                        print(
                            f"[{size_label}] {run_result.dashboard} x "
                            f"{run_result.workflow} x {run_result.engine} "
                            f"run {run_result.run_index}: "
                            f"{run_result.average_duration:.2f} ms avg "
                            f"({run_result.queries} queries)"
                        )
                for engine in engines.values():
                    engine.close()
        return result

    def _cell_task(self, execution_slot, spec, table, reference, goals,
                   engine, engine_name, dashboard_name, workflow_name,
                   size_label, num_rows, run_index):
        """One engine x run grid cell as a schedulable closure."""

        def cell() -> RunResult:
            with execution_slot(engine):
                return self._run_session(
                    spec, table, reference, goals, engine, engine_name,
                    dashboard_name, workflow_name, size_label, num_rows,
                    run_index,
                )

        return cell

    # -- internals ----------------------------------------------------------------

    def _reference_table(self, dashboard_name: str, num_rows: int) -> Table:
        rows = min(num_rows, self.config.reference_rows)
        return generate_dataset(dashboard_name, rows, seed=self.config.seed)

    @staticmethod
    def _loaded_engine(name: str, table: Table) -> Engine:
        engine = create_engine(name)
        engine.load_table(table)
        return engine

    def _run_session(
        self,
        spec,
        table: Table,
        reference: Table,
        goals,
        engine: Engine,
        engine_name: str,
        dashboard_name: str,
        workflow_name: str,
        size_label: str,
        num_rows: int,
        run_index: int,
    ) -> RunResult:
        reference_engine = create_engine("vectorstore")
        reference_engine.load_table(reference)
        session_config = SessionConfig(
            p_markov_initial=self.config.session.p_markov_initial,
            decay_rate=self.config.session.decay_rate,
            max_steps_per_goal=self.config.session.max_steps_per_goal,
            max_total_steps=self.config.session.max_total_steps,
            stall_limit=self.config.session.stall_limit,
            markov_preset=self.config.session.markov_preset,
            lookahead=self.config.session.lookahead,
            run_to_max=self.config.session.run_to_max,
            policy=self.config.session.policy,
            seed=self.config.seed * 1_000 + run_index,
        )
        simulator = SessionSimulator(
            spec,
            reference,  # dashboard parameter domains come from data stats
            [g.query for g in goals],
            measured_engine=engine,
            reference_engine=reference_engine,
            config=session_config,
            workflow_name=workflow_name,
        )
        log = simulator.run()
        if self._log_directory is not None:
            self._export_log(
                log, dashboard_name, workflow_name, engine_name,
                size_label, run_index,
            )
        return RunResult(
            dashboard=dashboard_name,
            workflow=workflow_name,
            engine=engine_name,
            size_label=size_label,
            rows=num_rows,
            run_index=run_index,
            durations_ms=log.query_durations(),
            interactions=log.interaction_count,
            queries=log.query_count,
            goals_completed=log.goals_completed,
            goals_total=log.goals_total,
            empty_results=log.empty_result_count(),
        )

    def _export_log(
        self,
        log,
        dashboard_name: str,
        workflow_name: str,
        engine_name: str,
        size_label: str,
        run_index: int,
    ) -> None:
        from pathlib import Path

        from repro.logs.io import write_jsonl
        from repro.logs.records import export_session

        directory = Path(self._log_directory)
        directory.mkdir(parents=True, exist_ok=True)
        filename = (
            f"{dashboard_name}_{workflow_name}_{engine_name}_"
            f"{size_label}_run{run_index}.jsonl"
        )
        write_jsonl(export_session(log), directory / filename)
