"""Benchmark harness: the Table 3 parameter matrix, executed end-to-end.

:class:`~repro.harness.config.BenchmarkConfig` declares the experiment
(dashboards × workflows × engines × dataset sizes × runs);
:class:`~repro.harness.runner.BenchmarkRunner` executes it and exposes
aggregations matching the paper's figures.
"""

from repro.harness.config import BenchmarkConfig, table3_matrix
from repro.harness.runner import BenchmarkResult, BenchmarkRunner, RunResult

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "BenchmarkRunner",
    "RunResult",
    "table3_matrix",
]
