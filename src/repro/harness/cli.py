"""Command-line benchmark runner.

Run the SIMBA benchmark grid from a shell::

    python -m repro.harness.cli --rows 50000 --runs 2 \
        --dashboards customer_service it_monitor \
        --workflows shneiderman --engines vectorstore sqlite

Prints Figure 7/8-style duration summaries and, with ``--table4``, the
workload-shape statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.dashboard.library import DASHBOARD_NAMES
from repro.engine.registry import available_engines
from repro.errors import ConfigError
from repro.execution import ExecutionPolicy, compose_cli_policy
from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner
from repro.metrics.report import format_table
from repro.simulation.workflows import WORKFLOWS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simba-bench",
        description="Run the SIMBA dashboard-exploration benchmark.",
    )
    parser.add_argument(
        "--dashboards", nargs="+", default=list(DASHBOARD_NAMES),
        choices=DASHBOARD_NAMES, metavar="NAME",
        help=f"dashboards to test (default: all; choices: {DASHBOARD_NAMES})",
    )
    parser.add_argument(
        "--workflows", nargs="+", default=["shneiderman"],
        choices=sorted(WORKFLOWS), metavar="NAME",
        help="goal-sequence workflows to simulate",
    )
    parser.add_argument(
        "--engines", nargs="+", default=["vectorstore", "sqlite"],
        choices=available_engines(), metavar="NAME",
        help="engines under test",
    )
    parser.add_argument(
        "--rows", type=int, default=20_000,
        help="dataset size in rows (paper: 100K/1M/10M)",
    )
    parser.add_argument(
        "--runs", type=int, default=2,
        help="runs per parameter combination (paper: 8)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--group-by", nargs="+", default=["dashboard", "engine"],
        choices=["dashboard", "workflow", "engine", "size_label"],
        help="fields to group the duration summary by",
    )
    parser.add_argument(
        "--table4", action="store_true",
        help="also print workload-shape statistics per dashboard",
    )
    parser.add_argument(
        "--policy", default=None, metavar="PRESET",
        choices=ExecutionPolicy.PRESETS,
        help="execution-policy preset: "
        f"{', '.join(ExecutionPolicy.PRESETS)} (individual "
        "--batch/--workers/--shards/--multiplan/--backend flags compose "
        "on top; "
        "default: serial, the paper's sequential setup)",
    )
    parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="execute each interaction's query fan-out through the "
        "shared-scan batch optimizer (--no-batch: one engine call per "
        "query, the paper's sequential setup)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width: overlaps independent engine x run grid "
        "cells and each session's scan groups (1 = sequential; results "
        "are identical for any value, only wall-clock changes)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="row-range shards per scan group: each batched fan-out's "
        "base scans split into this many per-shard tasks merged via "
        "partial-aggregate rollup (needs batch mode; 1 = unsharded; "
        "results are identical for any value)",
    )
    parser.add_argument(
        "--multiplan", action=argparse.BooleanOptionalAction, default=None,
        help="evaluate each unfiltered scan group's fusion classes in "
        "one combined pass — the initial render's one-scan-per-GROUP-BY "
        "shape collapses to one scan per table (needs batch mode; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--backend", default=None, choices=("threads", "processes"),
        help="where batched shard work executes: threads (default) or "
        "worker processes fed from shared-memory table exports (needs "
        "batch mode; results are identical either way)",
    )
    parser.add_argument(
        "--progress", action="store_true", help="print per-run progress"
    )
    parser.add_argument(
        "--export-logs", metavar="DIR", default=None,
        help="write each session's log as JSONL into DIR "
        "(replayable with python -m repro.logs.cli)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record the run's telemetry and write a Chrome trace-event "
        "JSON file (loadable in Perfetto / chrome://tracing)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        policy = compose_cli_policy(
            args.policy,
            base=ExecutionPolicy.serial(),
            batch=args.batch,
            workers=args.workers,
            shards=args.shards,
            multiplan=args.multiplan,
            backend=args.backend,
        )
        config = BenchmarkConfig(
            dashboards=tuple(args.dashboards),
            workflows=tuple(args.workflows),
            engines=tuple(args.engines),
            sizes={f"{args.rows}": args.rows},
            runs=args.runs,
            seed=args.seed,
            policy=policy,
        )
    except ConfigError as exc:
        parser.error(f"{exc} — on this CLI, add --batch or pick a batch "
                     f"--policy preset")
    print(f"execution policy: {config.policy.describe()}")
    if config.workers > 1:
        print(f"grid-cell overlap: {config.workers} workers")
    runner = BenchmarkRunner(config, log_directory=args.export_logs)
    telemetry = None
    if args.trace is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry().activate()
    try:
        result = runner.run(progress=args.progress)
    finally:
        if telemetry is not None:
            from repro.telemetry import write_chrome_trace

            telemetry.deactivate()
            path = write_chrome_trace(telemetry.tracer, args.trace)
            print(f"trace: {len(telemetry.tracer)} spans -> {path}")

    print("\nQuery-duration summary:")
    print(
        format_table(
            [s.as_row() for s in result.summaries_by(*args.group_by)]
        )
    )
    if result.skipped:
        print("\nSkipped (workflow not applicable):")
        for dashboard, workflow, size in result.skipped:
            print(f"  {dashboard} x {workflow} @ {size}")

    if args.table4:
        _print_table4(result)
    return 0


def _print_table4(result) -> None:
    from repro.metrics.workload_stats import workload_statistics
    from repro.sql.parser import parse_query  # noqa: F401  (documented dep)

    print("\nWorkload-shape statistics are computed from session logs;")
    print("re-run with the library API for per-query shapes, e.g.:")
    print("  repro.metrics.workload_stats.session_workload_statistics(logs)")
    rows = []
    for dashboard in sorted({run.dashboard for run in result.runs}):
        durations = result.durations(dashboard=dashboard)
        rows.append(
            {
                "dashboard": dashboard,
                "queries": len(durations),
                "mean_ms": round(
                    sum(durations) / max(len(durations), 1), 3
                ),
            }
        )
    print(format_table(rows))


if __name__ == "__main__":
    sys.exit(main())
