"""Per-query EXPLAIN: which tier answered each query, and what it cost.

:meth:`repro.facade.Session.explain` refreshes a dashboard under a
private :class:`~repro.telemetry.Telemetry` bundle and hands the timed
results plus the tracer to :func:`build_explain`, which correlates the
two: every visualization's query maps to exactly one answering tier —

- ``cache``: served from the per-query LRU or the scan-group cache;
- ``multiplan``: derived from a combined finest-grouping pass
  (sharded or not);
- ``sharded``: rolled up from per-shard partial aggregates;
- ``shared_scan``: answered by the shared-scan batch layer (fused
  execution over one materialized scan, or a per-class execution);
- ``fallback``: executed unbatched (joins, ``batch=False`` policies).

The report renders as a per-query table plus the refresh's span tree
with per-span timings, so "why was this refresh slow" is one print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.trace import Span, Tracer

#: Every tier a query can be attributed to.
TIERS = ("cache", "multiplan", "sharded", "shared_scan", "fallback")


@dataclass(frozen=True)
class ExplainEntry:
    """One query's attribution: tier + cost, keyed by visualization."""

    viz_id: str
    sql: str
    tier: str
    duration_ms: float
    rows: int


class ExplainReport:
    """Per-query tier attribution plus the refresh's span tree."""

    def __init__(self, entries: list[ExplainEntry], spans: list[Span]):
        self.entries = entries
        self.spans = spans

    @property
    def tiers(self) -> dict[str, str]:
        """Visualization id → answering tier."""
        return {entry.viz_id: entry.tier for entry in self.entries}

    def tier(self, viz_id: str) -> str:
        for entry in self.entries:
            if entry.viz_id == viz_id:
                return entry.tier
        raise KeyError(viz_id)

    def span_tree(self) -> str:
        """The span hierarchy, indented, with per-span timings."""
        children: dict[int | None, list[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def render(span: Span, depth: int) -> None:
            duration = span.duration_ms
            timing = "open" if duration is None else f"{duration:.3f} ms"
            notes = ""
            if span.attrs:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items())
                )
                notes = f" [{rendered}]"
            lines.append(f"{'  ' * depth}{span.name} ({timing}){notes}")
            for child in children.get(span.span_id, ()):
                render(child, depth + 1)

        for root in children.get(None, ()):
            render(root, 0)
        return "\n".join(lines)

    def format(self) -> str:
        """The full human-readable report."""
        if not self.entries:
            return "(no queries executed)"
        width = max(len(e.viz_id) for e in self.entries)
        tier_width = max(len(e.tier) for e in self.entries)
        lines = [
            f"{'viz':<{width}}  {'tier':<{tier_width}}  "
            f"{'ms':>9}  {'rows':>6}  sql"
        ]
        for entry in self.entries:
            sql = entry.sql if len(entry.sql) <= 72 else entry.sql[:69] + "..."
            lines.append(
                f"{entry.viz_id:<{width}}  {entry.tier:<{tier_width}}  "
                f"{entry.duration_ms:>9.3f}  {entry.rows:>6}  {sql}"
            )
        tree = self.span_tree()
        if tree:
            lines += ["", "span tree:", tree]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return (
            f"ExplainReport({len(self.entries)} queries, "
            f"{len(self.spans)} spans)"
        )


def build_explain(results: dict, tracer: Tracer) -> ExplainReport:
    """Correlate one refresh's timed results with its tracer.

    ``results`` is the ``{viz_id: QueryResult}`` mapping a refresh
    returns. Tier attribution comes from the tracer's query-tier side
    channel; a query no tier tagged executed outside every optimizer
    layer, which is by definition the ``fallback`` tier.
    """
    tiers = tracer.query_tiers
    entries = [
        ExplainEntry(
            viz_id=viz_id,
            sql=timed.sql,
            tier=tiers.get(timed.sql, "fallback"),
            duration_ms=timed.duration_ms,
            rows=timed.rows_returned,
        )
        for viz_id, timed in sorted(results.items())
    ]
    return ExplainReport(entries, tracer.spans())


__all__ = ["ExplainEntry", "ExplainReport", "TIERS", "build_explain"]
