"""Trace export and validation: Chrome trace-event JSON + snapshots.

Two consumers:

- ``--trace FILE`` on the CLIs writes :func:`chrome_trace` output —
  the Trace Event Format's ``"X"`` complete events plus ``"M"``
  thread-name metadata — loadable directly in Perfetto /
  ``chrome://tracing``, one timeline row per worker thread, spans
  nested by start/duration containment.
- ``BENCH_*`` artifacts embed :func:`telemetry_snapshot` — a compact
  plain-JSON block (metric snapshot + span tallies + tier histogram)
  so a result file records *how* its queries executed, not just how
  long they took.

The validators are the schema checkers the tests and the CI traced
replay step (``tools/check_trace.py``) run: every span closed,
parentage resolvable and acyclic, ids unique, and the exported JSON
structurally sound.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.trace import Span, Tracer


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's spans as a Chrome trace-event JSON object.

    Timestamps/durations convert to microseconds (the format's unit);
    thread names map to stable small ``tid`` values with ``"M"``
    metadata rows naming them. Span identity and attributes ride in
    ``args`` so the validator (and a human) can reconstruct the tree.
    """
    spans = tracer.spans()
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        duration = span.duration_ms
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": round(span.start_ms * 1000.0, 3),
                "dur": round((duration or 0.0) * 1000.0, 3),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(tracer), indent=2) + "\n", encoding="utf-8"
    )
    return path


def validate_spans(spans: list[Span]) -> list[str]:
    """Structural errors in a recorded span list (empty = valid).

    Checks: unique ids, every span closed with ``end >= start``,
    every parent id resolves to a recorded span, and parent chains
    terminate (acyclic).
    """
    errors: list[str] = []
    by_id: dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            errors.append(f"duplicate span id {span.span_id} ({span.name})")
        by_id[span.span_id] = span
    for span in spans:
        label = f"span {span.span_id} ({span.name})"
        if span.end_ms is None:
            errors.append(f"{label}: never closed")
        elif span.end_ms < span.start_ms:
            errors.append(f"{label}: negative duration")
        if span.parent_id is not None and span.parent_id not in by_id:
            errors.append(f"{label}: unknown parent {span.parent_id}")
    # Acyclicity: walk each parent chain; more hops than spans => cycle.
    for span in spans:
        seen = 0
        cursor = span
        while cursor.parent_id is not None:
            cursor = by_id.get(cursor.parent_id)
            if cursor is None:
                break  # already reported as unknown parent
            seen += 1
            if seen > len(spans):
                errors.append(
                    f"span {span.span_id} ({span.name}): parent cycle"
                )
                break
    return errors


def validate_chrome_trace(data: object) -> list[str]:
    """Structural errors in exported Chrome trace JSON (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["not a trace object with a traceEvents list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    span_ids: set[int] = set()
    parents: list[tuple[int, int]] = []
    parent_of: dict[int, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            errors.append(f"event {i}: unexpected phase {phase!r}")
            continue
        for field_name in ("name", "pid", "tid", "ts", "dur", "args"):
            if field_name not in event:
                errors.append(f"event {i}: missing {field_name}")
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"event {i}: ts is not numeric")
        if not isinstance(event.get("dur"), (int, float)):
            errors.append(f"event {i}: dur is not numeric")
        elif event["dur"] < 0:
            errors.append(f"event {i}: negative dur")
        args = event.get("args")
        if not isinstance(args, dict) or "span_id" not in args:
            errors.append(f"event {i}: args.span_id missing")
            continue
        span_id = args["span_id"]
        if span_id in span_ids:
            errors.append(f"event {i}: duplicate span_id {span_id}")
        span_ids.add(span_id)
        if args.get("parent_id") is not None:
            parents.append((span_id, args["parent_id"]))
            parent_of[span_id] = args["parent_id"]
    for span_id, parent_id in parents:
        if parent_id not in span_ids:
            errors.append(f"span {span_id}: unknown parent {parent_id}")
    for span_id in parent_of:
        seen = 0
        cursor = span_id
        while cursor in parent_of:
            cursor = parent_of[cursor]
            seen += 1
            if seen > len(span_ids):
                errors.append(f"span {span_id}: parent cycle")
                break
    return errors


def validate_trace_file(path) -> list[str]:
    """Load ``path`` as JSON and validate it as a Chrome trace."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path}: not loadable JSON: {exc}"]
    return validate_chrome_trace(data)


def telemetry_snapshot(telemetry) -> dict:
    """The plain-JSON telemetry block embedded in ``BENCH_*`` artifacts.

    ``telemetry`` is a :class:`repro.telemetry.Telemetry` bundle. The
    block is intentionally compact: the full metric snapshot, span
    counts by name, and how many queries each tier answered — enough
    to read an artifact and know which optimizer tiers did the work.
    """
    spans = telemetry.tracer.spans()
    by_name: dict[str, int] = {}
    for span in spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    tier_counts: dict[str, int] = {}
    for tier in telemetry.tracer.query_tiers.values():
        tier_counts[tier] = tier_counts.get(tier, 0) + 1
    return {
        "metrics": telemetry.registry.snapshot(),
        "spans": {
            "total": len(spans),
            "by_name": {k: by_name[k] for k in sorted(by_name)},
        },
        "query_tiers": {k: tier_counts[k] for k in sorted(tier_counts)},
    }


__all__ = [
    "chrome_trace",
    "telemetry_snapshot",
    "validate_chrome_trace",
    "validate_spans",
    "validate_trace_file",
    "write_chrome_trace",
]
