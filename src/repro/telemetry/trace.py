"""Structured refresh traces: a thread-safe tracer with nested spans.

One refresh decomposes into a span tree::

    refresh
    └── scan_group            (one per (table, normalized filter))
        ├── cache_lookup      (scan-group cache probe)
        ├── shared_scan       (one materialization + fused queries)
        ├── multiplan_pass    (one combined finest-grouping pass)
        ├── shard[i]          (one per row-range shard task)
        ├── rollup_merge      (partial-aggregate re-aggregation)
        └── fallback          (one per unbatchable query)

Parentage propagates through :mod:`contextvars`, so spans opened on
:class:`~repro.concurrency.pool.WorkerPool` threads still nest under
the refresh that submitted them — pool tasks are wrapped with
:meth:`Tracer.bind`, which captures the submitting thread's context
and records queue-wait (submit → run start) as a span attribute.
Sharded group runs additionally carry an explicit parent span across
threads (the group span opens at plan time on the calling thread; each
shard task parents its span to it directly).

**The disabled path is the default and costs one attribute load.**
Instrumentation sites are all guarded by::

    tracer = _trace.ACTIVE
    if tracer is not None: ...

``ACTIVE`` is a module global that is ``None`` unless a
:class:`~repro.telemetry.Telemetry` bundle is installed, so untraced
execution allocates nothing and takes the exact pre-telemetry code
path — the byte-identity and overhead tests in
``tests/test_telemetry.py`` pin that contract.

Alongside spans, the tracer carries the **query-tier side channel**:
every execution path that answers a query tags its canonical SQL with
the tier that answered it (``cache`` / ``multiplan`` / ``sharded`` /
``shared_scan`` / ``fallback``), which is what
:meth:`repro.facade.Session.explain` reports per visualization.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: The process-wide active tracer, or ``None`` (the default: tracing
#: off). Instrumentation sites read this one module attribute and
#: branch; install via :class:`repro.telemetry.Telemetry`.
ACTIVE: "Tracer | None" = None

#: The current span, per logical context. Worker threads inherit it
#: through :meth:`Tracer.bind`'s ``copy_context`` capture.
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_telemetry_span", default=None
)

#: Queue-wait (ms) measured by :meth:`Tracer.bind`, consumed as an
#: attribute by the next span the bound task opens.
_QUEUE_WAIT: contextvars.ContextVar[float | None] = contextvars.ContextVar(
    "repro_telemetry_queue_wait", default=None
)


@dataclass
class Span:
    """One timed region of a refresh, with parentage and attributes.

    ``start_ms``/``end_ms`` are relative to the owning tracer's epoch
    (``perf_counter`` based — monotonic, comparable across threads).
    ``end_ms`` is ``None`` while the span is open; a finished trace
    must have none (the export validator checks).
    """

    span_id: int
    parent_id: int | None
    name: str
    start_ms: float
    end_ms: float | None = None
    thread: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float | None:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms


class Tracer:
    """Thread-safe span recorder plus the query-tier side channel.

    All mutation is lock-guarded; spans append in open order. The
    recorded list is unbounded by design — a tracer's lifetime is one
    traced run (a CLI invocation, one ``Session.explain``), not the
    process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self._tiers: dict[str, str] = {}

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._epoch) * 1000.0

    # -- spans --------------------------------------------------------------

    def begin(self, name: str, parent: Span | None = None, **attrs) -> Span:
        """Open a span explicitly; pair with :meth:`finish`.

        ``parent=None`` parents to the context's current span. The
        explicit form exists for spans whose lifetime crosses threads
        (a sharded group's span opens at plan time on the caller and
        closes in the merge step); prefer :meth:`span` elsewhere.
        """
        if parent is None:
            parent = _CURRENT.get()
        wait = _QUEUE_WAIT.get()
        if wait is not None:
            _QUEUE_WAIT.set(None)  # first span after dequeue claims it
            attrs.setdefault("queue_wait_ms", round(wait, 3))
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_ms=self._now_ms(),
            thread=threading.current_thread().name,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close an explicitly opened span."""
        span.end_ms = self._now_ms()

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs):
        """Open a span for the duration of the ``with`` body.

        The span becomes the context's current span inside the body,
        so nested instrumentation parents correctly — including on
        worker threads entered via :meth:`bind`.
        """
        opened = self.begin(name, parent=parent, **attrs)
        token = _CURRENT.set(opened)
        try:
            yield opened
        finally:
            _CURRENT.reset(token)
            self.finish(opened)

    def bind(self, fn):
        """Wrap a pool task so the submitter's span context travels.

        Captures ``contextvars.copy_context()`` at bind time (i.e. at
        submission) and stamps the elapsed submit→run delay into the
        first span the task opens as ``queue_wait_ms`` — the
        queue-wait vs run-time split per task. Each bound callable is
        run at most once (a copied context cannot be re-entered);
        the executors bind one wrapper per task.
        """
        ctx = contextvars.copy_context()
        submitted = time.perf_counter()

        def bound(*args, **kwargs):
            wait_ms = (time.perf_counter() - submitted) * 1000.0
            return ctx.run(self._run_bound, fn, wait_ms, args, kwargs)

        return bound

    def _run_bound(self, fn, wait_ms: float, args, kwargs):
        _QUEUE_WAIT.set(wait_ms)
        try:
            return fn(*args, **kwargs)
        finally:
            _QUEUE_WAIT.set(None)

    # -- query tiers --------------------------------------------------------

    def tag_query(self, sql: str, tier: str) -> None:
        """Record which execution tier answered ``sql`` (last wins).

        Sites tag in execution order, outermost first, so the innermost
        layer that actually answered lands last: a fallback loop tags
        ``fallback`` *before* delegating, and a cache hit inside the
        delegate overrides it with ``cache``.
        """
        with self._lock:
            self._tiers[sql] = tier

    @property
    def query_tiers(self) -> dict[str, str]:
        """Canonical SQL → answering tier, for every tagged query."""
        with self._lock:
            return dict(self._tiers)

    # -- inspection ---------------------------------------------------------

    def spans(self) -> list[Span]:
        """Every recorded span, in open order (snapshot copy)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def current_span(self) -> Span | None:
        """The context's current span (``None`` outside any span)."""
        return _CURRENT.get()


__all__ = ["ACTIVE", "Span", "Tracer"]
