"""Unified telemetry: refresh traces, metrics, export, and EXPLAIN.

Zero-dependency observability for the whole execution stack. A
:class:`Telemetry` bundle pairs a :class:`~repro.telemetry.trace.Tracer`
(nested spans, propagated across worker threads) with a
:class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
p50/p95/p99 histograms); installing it flips the two module globals
every instrumentation site guards on::

    telemetry = Telemetry()
    with telemetry.install():
        session.refresh("customer_service")
    print(telemetry.registry.snapshot()["counters"])

Telemetry is **off by default**: uninstalled, every site costs one
module-attribute load and allocates nothing, so untraced execution is
byte- and timing-identical to the pre-telemetry stack (pinned by
``tests/test_telemetry.py``).

Consumers: ``repro.connect(..., telemetry=)`` scopes a bundle around
every session operation; ``Session.explain(dashboard)`` reports each
query's answering tier; ``--trace FILE`` on the harness and
logs-replay CLIs writes a Perfetto-loadable Chrome trace
(:mod:`repro.telemetry.export`); benchmarks embed
:func:`~repro.telemetry.export.telemetry_snapshot` blocks in their
``BENCH_*`` artifacts.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.telemetry.explain import ExplainEntry, ExplainReport, build_explain
from repro.telemetry.export import (
    chrome_trace,
    telemetry_snapshot,
    validate_chrome_trace,
    validate_spans,
    validate_trace_file,
    write_chrome_trace,
)
from repro.telemetry.metrics import HistogramSummary, MetricsRegistry
from repro.telemetry.trace import Span, Tracer


class Telemetry:
    """One tracer + one metrics registry, installable as a unit.

    :meth:`install` is the scoped form (saves and restores whatever was
    active, so bundles nest — ``Session.explain`` relies on that to
    shadow a session-wide bundle for one refresh);
    :meth:`activate`/:meth:`deactivate` are the unscoped form for
    process-lifetime consumers like the ``--trace`` CLIs.

    The active bundle is process-global by design: spans must cross
    worker threads, so thread-local installation would sever exactly
    the propagation the tracer exists for. Two *concurrently installed*
    bundles would shadow each other; scope installs around one logical
    run.
    """

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.registry = MetricsRegistry()

    @contextmanager
    def install(self):
        """Make this bundle active for the ``with`` body (nestable)."""
        previous = (_trace.ACTIVE, _metrics.ACTIVE)
        _trace.ACTIVE = self.tracer
        _metrics.ACTIVE = self.registry
        try:
            yield self
        finally:
            _trace.ACTIVE, _metrics.ACTIVE = previous

    def activate(self) -> "Telemetry":
        """Make this bundle active until :meth:`deactivate` (chainable)."""
        _trace.ACTIVE = self.tracer
        _metrics.ACTIVE = self.registry
        return self

    def deactivate(self) -> None:
        """Deactivate whatever is active (idempotent)."""
        _trace.ACTIVE = None
        _metrics.ACTIVE = None

    @property
    def active(self) -> bool:
        """Whether this bundle is the currently installed one."""
        return _trace.ACTIVE is self.tracer

    def snapshot(self) -> dict:
        """Shorthand for :func:`~repro.telemetry.export.telemetry_snapshot`."""
        return telemetry_snapshot(self)


__all__ = [
    "ExplainEntry",
    "ExplainReport",
    "HistogramSummary",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "build_explain",
    "chrome_trace",
    "telemetry_snapshot",
    "validate_chrome_trace",
    "validate_spans",
    "validate_trace_file",
    "write_chrome_trace",
]
