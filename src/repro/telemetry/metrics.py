"""Metrics registry: counters, gauges, histograms with percentiles.

The registry is the single sink the previously scattered counters
publish into when telemetry is on:

- :meth:`~repro.engine.interface.Engine.execute_timed` observes every
  query's ``duration_ms`` into the ``engine.query_ms`` histogram
  (labeled by engine name);
- the sharded executor observes each shard's materialization time into
  ``shard.scan_ms``;
- :class:`~repro.engine.cache.CachedEngine` increments ``cache.hits``
  / ``cache.misses`` (its public fields are unchanged);
- every batch execution folds its
  :class:`~repro.engine.batch.BatchStats` delta into ``batch.*``
  counters (:meth:`MetricsRegistry.record_batch`);
- :class:`~repro.concurrency.pool.WorkerPool` sets per-worker task
  counts as ``pool.worker_tasks`` gauges.

Like tracing (:mod:`repro.telemetry.trace`), publication is guarded by
the module-global ``ACTIVE``: ``None`` (the default) means every site
pays one attribute load and allocates nothing.

Keys are ``name`` plus optional labels, rendered as
``name{label=value,...}`` with labels sorted — stable across runs, so
snapshots diff cleanly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: The process-wide active registry, or ``None`` (metrics off).
ACTIVE: "MetricsRegistry | None" = None

#: BatchStats fields folded into ``batch.*`` counters, in field order.
_BATCH_FIELDS = (
    "queries",
    "groups",
    "base_scans",
    "shared_scans",
    "fused_queries",
    "cache_hits",
    "fallbacks",
    "sharded_groups",
    "shard_scans",
    "multiplan_groups",
    "multiplan_plans",
    "proc_shard_scans",
)


def metric_key(name: str, labels: dict[str, object]) -> str:
    """The registry key for ``name`` under ``labels`` (sorted, stable)."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


@dataclass
class HistogramSummary:
    """One histogram's snapshot: count, extremes, mean, percentiles."""

    count: int
    min: float
    max: float
    mean: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p95": round(self.p95, 6),
            "p99": round(self.p99, 6),
        }


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, -(-int(q * len(ordered) * 100) // 100))  # ceil(q*n)
    return ordered[min(rank, len(ordered)) - 1]


class MetricsRegistry:
    """Thread-safe counters, gauges, and histograms.

    Histograms keep raw samples (bounded by ``max_samples`` per series,
    oldest dropped) and summarize to p50/p95/p99 at snapshot time —
    exact percentiles at this system's sample volumes, no binning
    error.
    """

    def __init__(self, max_samples: int = 65536) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    # -- writers ------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to a monotonically increasing counter."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time value (last write wins)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one histogram sample."""
        key = metric_key(name, labels)
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = []
                self._histograms[key] = series
            series.append(value)
            if len(series) > self._max_samples:
                del series[0]

    def record_batch(self, stats) -> None:
        """Fold one :class:`~repro.engine.batch.BatchStats` delta in."""
        with self._lock:
            for field_name in _BATCH_FIELDS:
                value = getattr(stats, field_name)
                if value:
                    key = f"batch.{field_name}"
                    self._counters[key] = self._counters.get(key, 0) + value

    # -- readers ------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels) -> float | None:
        with self._lock:
            return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels) -> HistogramSummary | None:
        """The series' summary, or ``None`` when nothing was observed."""
        with self._lock:
            series = self._histograms.get(metric_key(name, labels))
            if not series:
                return None
            ordered = sorted(series)
        return HistogramSummary(
            count=len(ordered),
            min=ordered[0],
            max=ordered[-1],
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )

    def snapshot(self) -> dict:
        """Plain-JSON view of everything recorded (sorted keys).

        The shape embedded into ``BENCH_*`` artifacts
        (:func:`repro.telemetry.export.telemetry_snapshot`)::

            {"counters": {...}, "gauges": {...},
             "histograms": {name: {count,min,max,mean,p50,p95,p99}}}
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histogram_keys = list(self._histograms)
        histograms = {}
        for key in sorted(histogram_keys):
            with self._lock:
                series = sorted(self._histograms.get(key, ()))
            if not series:
                continue
            histograms[key] = HistogramSummary(
                count=len(series),
                min=series[0],
                max=series[-1],
                mean=sum(series) / len(series),
                p50=_percentile(series, 0.50),
                p95=_percentile(series, 0.95),
                p99=_percentile(series, 0.99),
            ).as_dict()
        return {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": histograms,
        }


__all__ = [
    "ACTIVE",
    "HistogramSummary",
    "MetricsRegistry",
    "metric_key",
]
