"""JSONL and CSV round-tripping for exported session logs.

JSONL is the machine format (header line, then one line per entry); CSV
is the analyst-facing format — the shape the paper's user-study experts
received in a spreadsheet (§6.4) — with the header carried in a
``# key=value`` comment line.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import SimbaError
from repro.logs.records import ENTRY_FIELDS, ExportedLog, LogEntry


def write_jsonl(log: ExportedLog, path: str | Path) -> None:
    """Write a log as JSON Lines: one header object, then one per entry."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "header", **log.header()}) + "\n")
        for entry in log.entries:
            handle.write(
                json.dumps({"type": "entry", **entry.to_dict()}) + "\n"
            )


def read_jsonl(path: str | Path) -> ExportedLog:
    """Read a log written by :func:`write_jsonl`."""
    source = Path(path)
    log: ExportedLog | None = None
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimbaError(
                    f"{source}:{line_number}: invalid JSON"
                ) from exc
            kind = payload.pop("type", None)
            if kind == "header":
                if log is not None:
                    raise SimbaError(
                        f"{source}:{line_number}: duplicate header"
                    )
                log = ExportedLog.from_header(payload)
            elif kind == "entry":
                if log is None:
                    raise SimbaError(
                        f"{source}:{line_number}: entry before header"
                    )
                log.entries.append(LogEntry.from_dict(payload))
            else:
                raise SimbaError(
                    f"{source}:{line_number}: unknown record type {kind!r}"
                )
    if log is None:
        raise SimbaError(f"{source}: empty log file")
    return log


def write_csv(log: ExportedLog, path: str | Path) -> None:
    """Write a log as CSV with a ``#`` header comment line."""
    target = Path(path)
    with target.open("w", encoding="utf-8", newline="") as handle:
        header = " ".join(
            f"{key}={value}" for key, value in log.header().items()
        )
        handle.write(f"# {header}\n")
        writer = csv.writer(handle)
        writer.writerow(ENTRY_FIELDS)
        for entry in log.entries:
            record = entry.to_dict()
            writer.writerow([record[field] for field in ENTRY_FIELDS])


def read_csv(path: str | Path) -> ExportedLog:
    """Read a log written by :func:`write_csv`."""
    source = Path(path)
    with source.open("r", encoding="utf-8", newline="") as handle:
        first = handle.readline().strip()
        if not first.startswith("#"):
            raise SimbaError(f"{source}: missing '#' header comment line")
        header: dict[str, object] = {}
        for token in first.lstrip("# ").split():
            key, _, value = token.partition("=")
            header[key] = None if value == "None" else value
        log = ExportedLog.from_header(header)
        reader = csv.DictReader(handle)
        for row in reader:
            log.entries.append(LogEntry.from_dict(dict(row)))
    return log
