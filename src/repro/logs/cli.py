"""Command-line front end for session logs.

Three subcommands::

    # Simulate one session and write its log
    python -m repro.logs.cli simulate --dashboard customer_service \
        --workflow shneiderman --rows 20000 --out session.jsonl

    # Replay a log's query stream on another engine
    python -m repro.logs.cli replay session.jsonl --engine sqlite \
        --rows 20000

    # Print the paper-§7 exploration metrics of a log
    python -m repro.logs.cli metrics session.jsonl
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

from repro.dashboard.library import DASHBOARD_NAMES, load_dashboard
from repro.engine.registry import available_engines, create_engine
from repro.errors import ConfigError
from repro.execution import ExecutionPolicy, compose_cli_policy
from repro.logs.eva import eva_metrics
from repro.logs.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.logs.records import export_session
from repro.logs.replay import replay_log
from repro.simulation.session import SessionConfig, SessionSimulator
from repro.simulation.workflows import WORKFLOWS, get_workflow
from repro.workload import generate_dataset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simba-logs", description="Session-log tools."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run one session and export its log"
    )
    simulate.add_argument(
        "--dashboard", default="customer_service", choices=DASHBOARD_NAMES
    )
    simulate.add_argument(
        "--workflow", default="shneiderman", choices=sorted(WORKFLOWS)
    )
    simulate.add_argument(
        "--engine", default="vectorstore", choices=available_engines()
    )
    simulate.add_argument("--rows", type=int, default=20_000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--out", required=True,
        help="output path (.jsonl or .csv decides the format)",
    )

    replay = commands.add_parser(
        "replay", help="re-execute a log's queries on an engine"
    )
    replay.add_argument("log", help="log file (.jsonl or .csv)")
    replay.add_argument(
        "--engine", default="sqlite", choices=available_engines()
    )
    replay.add_argument(
        "--rows", type=int, default=20_000,
        help="dataset rows (must match the recording for cardinalities)",
    )
    replay.add_argument(
        "--seed", type=int, default=0,
        help="dataset seed (must match the recording for cardinalities)",
    )
    replay.add_argument(
        "--no-check", action="store_true",
        help="skip cardinality checking",
    )
    replay.add_argument(
        "--policy", default=None, metavar="PRESET",
        choices=ExecutionPolicy.PRESETS,
        help="execution-policy preset for the replay: "
        f"{', '.join(ExecutionPolicy.PRESETS)} (individual "
        "--batch/--workers/--shards/--multiplan/--backend flags compose "
        "on top; "
        "default: serial, one engine call per logged query)",
    )
    replay.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="replay each interaction's fan-out through the shared-scan "
        "batch optimizer",
    )
    replay.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for overlapping the replay "
        "(1 = sequential; results are identical for any value)",
    )
    replay.add_argument(
        "--shards", type=int, default=None,
        help="row-range shards per scan group during batched replay "
        "(needs batch mode; 1 = unsharded; results are identical for "
        "any value)",
    )
    replay.add_argument(
        "--multiplan", action=argparse.BooleanOptionalAction,
        default=None,
        help="evaluate each unfiltered scan group's fusion classes in "
        "one combined pass during batched replay (needs batch mode; "
        "results are identical either way)",
    )
    replay.add_argument(
        "--backend", default=None, choices=("threads", "processes"),
        help="where batched shard work executes: threads (default) or "
        "worker processes fed from shared-memory table exports (needs "
        "batch mode; results are identical either way)",
    )
    replay.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record the replay's telemetry and write a Chrome "
        "trace-event JSON file (loadable in Perfetto / chrome://tracing)",
    )

    metrics = commands.add_parser(
        "metrics", help="print the §7 exploration metrics of a log"
    )
    metrics.add_argument("log", help="log file (.jsonl or .csv)")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _simulate(args)
    if args.command == "replay":
        return _replay(args)
    return _metrics(args)


def _read_any(path: str):
    if path.endswith(".csv"):
        return read_csv(path)
    return read_jsonl(path)


def _simulate(args) -> int:
    spec = load_dashboard(args.dashboard)
    table = generate_dataset(args.dashboard, args.rows, seed=args.seed)
    measured = create_engine(args.engine)
    measured.load_table(table)
    reference_rows = max(500, min(2_000, args.rows))
    reference_table = generate_dataset(
        args.dashboard, reference_rows, seed=args.seed
    )
    reference = create_engine("vectorstore")
    reference.load_table(reference_table)

    workflow = get_workflow(args.workflow)
    goals = workflow.instantiate_for_dashboard(
        spec, random.Random(args.seed)
    )
    session = SessionSimulator(
        spec,
        reference_table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=SessionConfig(seed=args.seed),
        workflow_name=args.workflow,
    ).run()

    log = export_session(session)
    out = Path(args.out)
    if out.suffix == ".csv":
        write_csv(log, out)
    else:
        write_jsonl(log, out)
    print(
        f"wrote {out}: {log.interaction_count} interactions, "
        f"{log.query_count} queries, "
        f"{log.goals_completed}/{log.goals_total} goals"
    )
    return 0


def _replay(args) -> int:
    try:
        policy = compose_cli_policy(
            args.policy,
            base=ExecutionPolicy.serial(),
            batch=args.batch,
            workers=args.workers,
            shards=args.shards,
            multiplan=args.multiplan,
            backend=args.backend,
        ) or ExecutionPolicy.serial()
    except ConfigError as exc:
        print(
            f"error: {exc} — on this CLI, add --batch or pick a batch "
            f"--policy preset",
            file=sys.stderr,
        )
        return 2
    print(f"execution policy: {policy.describe()}")
    log = _read_any(args.log)
    engine = create_engine(args.engine)
    table = generate_dataset(log.dashboard, args.rows, seed=args.seed)
    engine.load_table(table)
    telemetry = None
    if args.trace is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry().activate()
    try:
        report = replay_log(
            log, engine, check_cardinality=not args.no_check, policy=policy
        )
    finally:
        if telemetry is not None:
            from repro.telemetry import write_chrome_trace

            telemetry.deactivate()
            out = write_chrome_trace(telemetry.tracer, args.trace)
            print(f"trace: {len(telemetry.tracer)} spans -> {out}")
    print(
        f"replayed {report.query_count} queries on {engine.name}: "
        f"mean {report.average_duration_ms():.3f} ms"
    )
    if not report.matched:
        print(f"cardinality mismatches: {len(report.mismatches)}")
        for mismatch in report.mismatches[:5]:
            print(
                f"  step {mismatch.entry.step}: logged "
                f"{mismatch.entry.rows_returned}, replayed "
                f"{mismatch.replayed_rows}"
            )
        return 1
    print("all cardinalities matched")
    return 0


def _metrics(args) -> int:
    log = _read_any(args.log)
    result = eva_metrics(log)
    print(f"dashboard             : {log.dashboard}")
    print(f"engine                : {log.engine}")
    print(f"workflow              : {log.workflow}")
    print(f"goals                 : {log.goals_completed}/{log.goals_total}")
    print(f"total interactions    : {result.total_interactions}")
    print(f"total queries         : {result.total_queries}")
    print(f"exploration time (ms) : {result.total_exploration_ms:.1f}")
    print(
        f"interaction rate      : "
        f"{result.interaction_rate_per_minute:.1f}/min"
    )
    print(
        f"response ms mean/p95/max: {result.mean_response_ms:.2f} / "
        f"{result.p95_response_ms:.2f} / {result.max_response_ms:.2f}"
    )
    print(
        f"attributes explored   : "
        f"{', '.join(sorted(result.attributes_explored))}"
    )
    print(
        f"empty-result fraction : {result.empty_result_fraction:.2%}"
    )
    print(f"model mix             : {result.model_mix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
