"""Session-log persistence, replay, and log-derived EVA metrics.

The paper's user study (§6.4) hands experts *logs* — flat records of
interactions and the SQL they emitted — in a spreadsheet. This package
turns :class:`~repro.simulation.session.SessionLog` objects into exactly
that artifact and back:

- :mod:`repro.logs.records` — the flat, serialization-friendly log model;
- :mod:`repro.logs.io` — JSONL and CSV round-tripping;
- :mod:`repro.logs.replay` — re-execute a log's queries on any engine,
  checking result cardinalities against what the log recorded;
- :mod:`repro.logs.eva` — the log-computable exploration metrics the
  paper's related work catalogs (§7): interaction rate, response time,
  total exploration time, interactions performed, attributes explored.
"""

from repro.logs.eva import EvaMetrics, eva_metrics
from repro.logs.io import (
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.logs.records import ExportedLog, LogEntry, export_session
from repro.logs.replay import ReplayReport, replay_log

__all__ = [
    "EvaMetrics",
    "ExportedLog",
    "LogEntry",
    "ReplayReport",
    "eva_metrics",
    "export_session",
    "read_csv",
    "read_jsonl",
    "replay_log",
    "write_csv",
    "write_jsonl",
]
