"""Replay an exported log's query stream against an engine.

Replays are the bridge from a recorded session (simulated here, human in
the paper's study) back to a live benchmark: each logged SQL text is
parsed and re-executed in order, producing fresh durations on the target
engine while checking that every query still returns the cardinality the
log recorded. A cardinality mismatch means the dataset or engine no
longer matches the one that produced the log — exactly the regression a
replay harness exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.interface import Engine, QueryResult
from repro.errors import SimbaError
from repro.logs.records import ExportedLog, LogEntry
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class ReplayMismatch:
    """One replayed query whose result cardinality diverged from the log."""

    entry: LogEntry
    replayed_rows: int


@dataclass
class ReplayReport:
    """Outcome of replaying one log on one engine."""

    engine: str
    results: list[QueryResult] = field(default_factory=list)
    mismatches: list[ReplayMismatch] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.results)

    @property
    def matched(self) -> bool:
        """True when every replayed query matched its logged cardinality."""
        return not self.mismatches

    def durations_ms(self) -> list[float]:
        return [r.duration_ms for r in self.results]

    def average_duration_ms(self) -> float:
        durations = self.durations_ms()
        if not durations:
            return 0.0
        return sum(durations) / len(durations)


def replay_log(
    log: ExportedLog,
    engine: Engine,
    check_cardinality: bool = True,
    strict: bool = False,
) -> ReplayReport:
    """Re-execute every query in ``log`` against ``engine``.

    The engine must already hold the dataset the log was recorded
    against. With ``strict=True`` the first cardinality mismatch raises;
    otherwise mismatches are collected in the report.
    """
    report = ReplayReport(engine=engine.name)
    for entry in log.entries:
        query = parse_query(entry.sql)
        timed = engine.execute_timed(query)
        report.results.append(timed)
        if check_cardinality and timed.rows_returned != entry.rows_returned:
            mismatch = ReplayMismatch(entry, timed.rows_returned)
            if strict:
                raise SimbaError(
                    f"replay mismatch at step {entry.step}: logged "
                    f"{entry.rows_returned} rows, replay returned "
                    f"{timed.rows_returned} for {entry.sql!r}"
                )
            report.mismatches.append(mismatch)
    return report
