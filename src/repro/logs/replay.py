"""Replay an exported log's query stream against an engine.

Replays are the bridge from a recorded session (simulated here, human in
the paper's study) back to a live benchmark: each logged SQL text is
parsed and re-executed in order, producing fresh durations on the target
engine while checking that every query still returns the cardinality the
log recorded. A cardinality mismatch means the dataset or engine no
longer matches the one that produced the log — exactly the regression a
replay harness exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.interface import Engine, QueryResult
from repro.errors import SimbaError
from repro.logs.records import ExportedLog, LogEntry
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class ReplayMismatch:
    """One replayed query whose result cardinality diverged from the log."""

    entry: LogEntry
    replayed_rows: int


@dataclass
class ReplayReport:
    """Outcome of replaying one log on one engine."""

    engine: str
    results: list[QueryResult] = field(default_factory=list)
    mismatches: list[ReplayMismatch] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.results)

    @property
    def matched(self) -> bool:
        """True when every replayed query matched its logged cardinality."""
        return not self.mismatches

    def durations_ms(self) -> list[float]:
        return [r.duration_ms for r in self.results]

    def average_duration_ms(self) -> float:
        durations = self.durations_ms()
        if not durations:
            return 0.0
        return sum(durations) / len(durations)


def replay_log(
    log: ExportedLog,
    engine: Engine,
    check_cardinality: bool = True,
    strict: bool = False,
    policy=None,
    *,
    batch: bool | None = None,
    workers: int | None = None,
    shards: int | None = None,
    multiplan: bool | None = None,
) -> ReplayReport:
    """Re-execute every query in ``log`` against ``engine``.

    The engine must already hold the dataset the log was recorded
    against. With ``strict=True`` the first cardinality mismatch raises;
    otherwise mismatches are collected in the report.

    ``policy`` (an :class:`~repro.execution.ExecutionPolicy` or preset
    name) picks the replay strategy; the default is the historical
    sequential replay — ``ExecutionPolicy.serial()``, one engine call
    per logged query, in order. The per-knob keywords are deprecated
    and map onto the equivalent policy.

    A batch policy replays each interaction's fan-out — the
    consecutive entries sharing one ``step`` — as a single unit
    through the shared-scan optimizer
    (:meth:`~repro.engine.interface.Engine.execute_batch`), recreating
    the multi-query execution a batching dashboard backend performs;
    its ``shards``/``multiplan`` knobs split and combine the step's
    scan groups (:mod:`repro.sharding`, :mod:`repro.engine.multiplan`).

    ``workers > 1`` overlaps the replay over a worker pool — scan
    groups within each step in batch mode, individual queries
    otherwise. Results and mismatch reports are identical for every
    policy (queries still record in log order); only ``strict``
    raising moves from mid-execution to the recording pass, since
    overlapped queries have already run when checks happen.
    """
    from repro.execution import ExecutionPolicy, resolve_policy

    policy = resolve_policy(
        policy,
        api="replay_log",
        default=ExecutionPolicy.serial(),
        batch=batch,
        workers=workers,
        shards=shards,
        multiplan=multiplan,
    )
    report = ReplayReport(engine=engine.name)

    def record(entry: LogEntry, timed: QueryResult) -> None:
        report.results.append(timed)
        if check_cardinality and timed.rows_returned != entry.rows_returned:
            mismatch = ReplayMismatch(entry, timed.rows_returned)
            if strict:
                raise SimbaError(
                    f"replay mismatch at step {entry.step}: logged "
                    f"{entry.rows_returned} rows, replay returned "
                    f"{timed.rows_returned} for {entry.sql!r}"
                )
            report.mismatches.append(mismatch)

    if not policy.batch:
        if policy.workers > 1:
            from repro.concurrency.sessions import execute_all

            queries = [parse_query(e.sql) for e in log.entries]
            timed_results = execute_all(
                engine, queries, workers=policy.workers
            )
            for entry, timed in zip(log.entries, timed_results):
                record(entry, timed)
            return report
        for entry in log.entries:
            record(entry, engine.execute_timed(parse_query(entry.sql)))
        return report

    from itertools import groupby

    for _, group in groupby(log.entries, key=lambda e: e.step):
        step_entries = list(group)
        queries = [parse_query(e.sql) for e in step_entries]
        timed_results = engine.execute_batch(queries, policy)
        for entry, timed in zip(step_entries, timed_results):
            record(entry, timed)
    return report
