"""Flat log records, the exchange format between simulation and analysis.

A :class:`LogEntry` is one (interaction, query) pair — the same row shape
the paper's user-study spreadsheet used — and an :class:`ExportedLog` is
a complete session: header metadata plus entries in execution order.
Everything is plain strings/numbers so the records survive JSONL/CSV
round trips losslessly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import SimbaError
from repro.simulation.session import SessionLog


@dataclass(frozen=True)
class LogEntry:
    """One executed query and the interaction that triggered it.

    ``elapsed_ms`` is the session clock at the moment the query
    completed (cumulative over all prior queries), which lets metrics
    reconstruct pacing without absolute timestamps.
    """

    step: int
    model: str
    interaction: str
    sql: str
    rows_returned: int
    duration_ms: float
    elapsed_ms: float
    goal_index: int
    progress_after: float

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "LogEntry":
        try:
            return cls(
                step=int(payload["step"]),  # type: ignore[arg-type]
                model=str(payload["model"]),
                interaction=str(payload["interaction"]),
                sql=str(payload["sql"]),
                rows_returned=int(payload["rows_returned"]),  # type: ignore[arg-type]
                duration_ms=float(payload["duration_ms"]),  # type: ignore[arg-type]
                elapsed_ms=float(payload["elapsed_ms"]),  # type: ignore[arg-type]
                goal_index=int(payload["goal_index"]),  # type: ignore[arg-type]
                progress_after=float(payload["progress_after"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimbaError(f"malformed log entry: {payload!r}") from exc


#: Column order used by the CSV writer and expected by the reader.
ENTRY_FIELDS = (
    "step",
    "model",
    "interaction",
    "sql",
    "rows_returned",
    "duration_ms",
    "elapsed_ms",
    "goal_index",
    "progress_after",
)


@dataclass
class ExportedLog:
    """A complete session log: header metadata plus ordered entries."""

    dashboard: str
    engine: str
    workflow: str | None
    goals_completed: int
    goals_total: int
    entries: list[LogEntry] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.entries)

    @property
    def interaction_count(self) -> int:
        """Distinct interactions (several queries can share one step)."""
        return len({e.step for e in self.entries if e.interaction != "initial render"})

    def header(self) -> dict[str, object]:
        return {
            "dashboard": self.dashboard,
            "engine": self.engine,
            "workflow": self.workflow,
            "goals_completed": self.goals_completed,
            "goals_total": self.goals_total,
        }

    @classmethod
    def from_header(cls, payload: dict[str, object]) -> "ExportedLog":
        try:
            workflow = payload.get("workflow")
            return cls(
                dashboard=str(payload["dashboard"]),
                engine=str(payload["engine"]),
                workflow=None if workflow is None else str(workflow),
                goals_completed=int(payload["goals_completed"]),  # type: ignore[arg-type]
                goals_total=int(payload["goals_total"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimbaError(f"malformed log header: {payload!r}") from exc


def export_session(log: SessionLog) -> ExportedLog:
    """Flatten a simulator :class:`SessionLog` into an exportable log."""
    exported = ExportedLog(
        dashboard=log.dashboard,
        engine=log.engine,
        workflow=log.workflow,
        goals_completed=log.goals_completed,
        goals_total=log.goals_total,
    )
    elapsed = 0.0
    for record in log.records:
        for query in record.queries:
            elapsed += query.duration_ms
            exported.entries.append(
                LogEntry(
                    step=record.step,
                    model=record.model,
                    interaction=record.describe(),
                    sql=query.sql,
                    rows_returned=query.rows_returned,
                    duration_ms=query.duration_ms,
                    elapsed_ms=elapsed,
                    goal_index=record.goal_index,
                    progress_after=record.progress_after,
                )
            )
    return exported
