"""Exploration metrics computable from interaction logs.

The paper's related-work survey (§7) catalogs the measures the EVA
community derives from logs: interaction rates, system response time,
per-interaction latency, total exploration time, total interactions
performed, and attributes explored. All of them are functions of an
:class:`~repro.logs.records.ExportedLog`, computed here in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logs.records import ExportedLog
from repro.sql.ast import referenced_columns
from repro.sql.parser import parse_query


@dataclass(frozen=True)
class EvaMetrics:
    """Log-derived exploration measures (§7 of the paper)."""

    total_interactions: int
    total_queries: int
    #: Session wall-clock spent waiting on the DBMS, in milliseconds.
    total_exploration_ms: float
    #: Interactions per minute of exploration time.
    interaction_rate_per_minute: float
    mean_response_ms: float
    max_response_ms: float
    p95_response_ms: float
    #: Distinct data attributes referenced by any emitted query.
    attributes_explored: frozenset[str]
    empty_result_fraction: float
    #: Interactions contributed by each model ("oracle"/"markov").
    model_mix: dict[str, int]

    @property
    def attributes_explored_count(self) -> int:
        return len(self.attributes_explored)


def eva_metrics(log: ExportedLog, think_time_ms: float = 0.0) -> EvaMetrics:
    """Compute every §7 measure from one exported log.

    ``think_time_ms`` adds a fixed human pause per interaction to the
    exploration time (the log records only DBMS wall-clock). The paper's
    study sessions ran 12 minutes for a few dozen interactions, i.e.
    ~20–40 s of think time per interaction; pass a value in that range
    to compare interaction rates against the human-study literature.
    """
    durations = [entry.duration_ms for entry in log.entries]
    total_ms = log.entries[-1].elapsed_ms if log.entries else 0.0
    interactions = log.interaction_count
    total_ms += think_time_ms * interactions
    minutes = total_ms / 60_000.0
    rate = interactions / minutes if minutes > 0 else 0.0

    attributes: set[str] = set()
    for entry in log.entries:
        attributes |= referenced_columns(parse_query(entry.sql))

    empty = sum(1 for entry in log.entries if entry.rows_returned == 0)
    mix: dict[str, int] = {}
    for step in {e.step: e.model for e in log.entries if e.interaction != "initial render"}.values():
        mix[step] = mix.get(step, 0) + 1

    return EvaMetrics(
        total_interactions=interactions,
        total_queries=len(log.entries),
        total_exploration_ms=total_ms,
        interaction_rate_per_minute=rate,
        mean_response_ms=_mean(durations),
        max_response_ms=max(durations) if durations else 0.0,
        p95_response_ms=_percentile(durations, 0.95),
        attributes_explored=frozenset(attributes),
        empty_result_fraction=(
            empty / len(log.entries) if log.entries else 0.0
        ),
        model_mix=mix,
    )


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]
