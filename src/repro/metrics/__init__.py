"""Evaluation metrics (paper §6.2.5).

Query duration is the primary metric; workload-shape statistics
(Table 4) and duration distributions (Figures 7/8) are derived here
from session logs.
"""

from repro.metrics.report import (
    DurationSummary,
    duration_summary,
    format_table,
)
from repro.metrics.response_rate import (
    ResponseRate,
    response_rate,
    session_response_rate,
)
from repro.metrics.variance import (
    VarianceMeasures,
    cross_session_agreement,
    variance_measures,
)
from repro.metrics.workload_stats import (
    WorkloadStatistics,
    workload_statistics,
)

__all__ = [
    "DurationSummary",
    "ResponseRate",
    "VarianceMeasures",
    "WorkloadStatistics",
    "cross_session_agreement",
    "duration_summary",
    "format_table",
    "response_rate",
    "session_response_rate",
    "variance_measures",
    "workload_statistics",
]
