"""Duration distributions and plain-text report tables.

Figures 7 and 8 in the paper are box plots of query durations; their
underlying rows (median, quartiles, whiskers, mean) are produced here so
the benchmark harness can print the same series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DurationSummary:
    """Box-plot statistics of one duration distribution (milliseconds)."""

    label: str
    count: int
    mean: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_row(self) -> dict[str, object]:
        return {
            "label": self.label,
            "queries": self.count,
            "mean_ms": round(self.mean, 3),
            "p25_ms": round(self.p25, 3),
            "median_ms": round(self.median, 3),
            "p75_ms": round(self.p75, 3),
            "p95_ms": round(self.p95, 3),
            "max_ms": round(self.maximum, 3),
        }

    @property
    def iqr(self) -> float:
        """Inter-quartile range — the paper reads variability off this."""
        return self.p75 - self.p25


def duration_summary(label: str, durations: list[float]) -> DurationSummary:
    """Summarize a duration sample into box-plot statistics."""
    if not durations:
        return DurationSummary(label, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    array = np.asarray(durations, dtype=np.float64)
    return DurationSummary(
        label=label,
        count=int(array.size),
        mean=float(array.mean()),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        p95=float(np.percentile(array, 95)),
        maximum=float(array.max()),
    )


def format_table(rows: list[dict[str, object]]) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
