"""Interaction-variance measures (paper §6.3 / §7).

The paper argues that *some* benchmark variability is useful (unique
runs) while too much produces unrealistic workloads, and notes SIMBA
supports "new measures, such as the measures of interaction variance".
These are those measures, computed from session logs:

- **interaction-type entropy** — how evenly a session spreads across
  interaction kinds (a fully random user maximizes it);
- **distinct-state ratio** — unique dashboard states visited per
  interaction (revisiting states signals aimless wandering);
- **query diversity** — unique SQL texts per emitted query;
- **cross-session agreement** — Jaccard similarity of the query sets of
  two sessions (IDEBench's unconstrained runs agree far less than
  SIMBA's dashboard-constrained ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulation.session import SessionLog


@dataclass(frozen=True)
class VarianceMeasures:
    """Variance profile of one session."""

    label: str
    interactions: int
    type_entropy: float
    query_diversity: float
    empty_fraction: float

    def as_row(self) -> dict[str, object]:
        return {
            "label": self.label,
            "interactions": self.interactions,
            "type_entropy": round(self.type_entropy, 3),
            "query_diversity": round(self.query_diversity, 3),
            "empty_fraction": round(self.empty_fraction, 3),
        }


def interaction_type_entropy(log: SessionLog) -> float:
    """Shannon entropy (bits) of the interaction-kind distribution."""
    counts: dict[str, int] = {}
    total = 0
    for record in log.records:
        if record.interaction is None:
            continue
        kind = record.interaction.kind.value
        counts[kind] = counts.get(kind, 0) + 1
        total += 1
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def query_diversity(log: SessionLog) -> float:
    """Unique SQL texts as a fraction of all emitted queries."""
    queries = log.queries()
    if not queries:
        return 0.0
    return len(set(queries)) / len(queries)


def empty_fraction(log: SessionLog) -> float:
    """Fraction of emitted queries with zero-row results."""
    total = log.query_count
    if total == 0:
        return 0.0
    return log.empty_result_count() / total


def variance_measures(log: SessionLog, label: str = "") -> VarianceMeasures:
    """All per-session variance measures at once."""
    return VarianceMeasures(
        label=label or f"{log.dashboard}/{log.engine}",
        interactions=log.interaction_count,
        type_entropy=interaction_type_entropy(log),
        query_diversity=query_diversity(log),
        empty_fraction=empty_fraction(log),
    )


def cross_session_agreement(a: SessionLog, b: SessionLog) -> float:
    """Jaccard similarity of two sessions' query sets.

    Dashboard-constrained simulations revisit the same query space, so
    SIMBA sessions agree substantially; unconstrained stochastic
    workloads (IDEBench) agree far less — the §6.3 realism argument
    made quantitative.
    """
    set_a = set(a.queries())
    set_b = set(b.queries())
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)
