"""Response-rate metric (paper §6.2.5, inherited from Crossfilter [8]).

Response rate is the fraction of queries answered within a latency
threshold. The paper notes thresholds must be tailored per dashboard,
so this module exposes both a single-threshold rate and the full
threshold curve a dashboard developer would use to pick one.

Typical interactivity thresholds from the literature: 100 ms for
brushing-class interactions, 500 ms for click-class updates, 1 s as
the upper bound before exploration behaviour degrades (Liu & Heer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.session import SessionLog

#: Interactivity thresholds (ms) commonly cited in the EVA literature.
STANDARD_THRESHOLDS_MS = (50.0, 100.0, 500.0, 1000.0)


@dataclass(frozen=True)
class ResponseRate:
    """Fraction of queries under each latency threshold."""

    label: str
    total_queries: int
    rates: dict[float, float]

    def rate(self, threshold_ms: float) -> float:
        """Response rate at one threshold (must be a computed one)."""
        try:
            return self.rates[threshold_ms]
        except KeyError:
            raise KeyError(
                f"threshold {threshold_ms} not computed; available: "
                f"{sorted(self.rates)}"
            ) from None

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "label": self.label,
            "queries": self.total_queries,
        }
        for threshold in sorted(self.rates):
            row[f"<{int(threshold)}ms"] = f"{self.rates[threshold]:.1%}"
        return row


def response_rate(
    label: str,
    durations_ms: list[float],
    thresholds_ms: tuple[float, ...] = STANDARD_THRESHOLDS_MS,
) -> ResponseRate:
    """Compute response rates over a duration sample."""
    if not durations_ms:
        return ResponseRate(label, 0, {t: 1.0 for t in thresholds_ms})
    array = np.asarray(durations_ms, dtype=np.float64)
    rates = {
        threshold: float((array <= threshold).mean())
        for threshold in thresholds_ms
    }
    return ResponseRate(label, int(array.size), rates)


def session_response_rate(
    log: SessionLog,
    thresholds_ms: tuple[float, ...] = STANDARD_THRESHOLDS_MS,
) -> ResponseRate:
    """Response rates of every query in one session."""
    return response_rate(
        f"{log.dashboard}/{log.engine}", log.query_durations(), thresholds_ms
    )
