"""Workload-shape statistics (paper Table 4).

For each query in a workload, three structural quantities are measured:

- the number of plain (categorical/quantitative) data columns selected,
- the number of aggregated data columns,
- the number of filter predicates.

Table 4 reports mean ± standard deviation per dashboard; the same
statistics computed over IDEBench workloads drive the §6.3 comparison
(SIMBA: 3.8 attrs / 5.8 filters per visualization vs IDEBench:
2.1 / 13.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulation.session import SessionLog
from repro.sql.ast import Query
from repro.sql.parser import parse_query
from repro.sql.visitors import query_shape


@dataclass(frozen=True)
class MeanStd:
    """A mean ± standard deviation pair, formatted like the paper."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f}"


def _mean_std(values: list[float]) -> MeanStd:
    if not values:
        return MeanStd(0.0, 0.0, 0)
    mean = sum(values) / len(values)
    if len(values) == 1:
        return MeanStd(mean, 0.0, 1)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return MeanStd(mean, math.sqrt(variance), len(values))


@dataclass(frozen=True)
class WorkloadStatistics:
    """Table 4 row: per-query structural statistics of one workload."""

    label: str
    plain_columns: MeanStd
    aggregated_columns: MeanStd
    filters: MeanStd
    query_count: int

    def as_row(self) -> dict[str, object]:
        return {
            "statistic": self.label,
            "count_plain_columns": str(self.plain_columns),
            "count_aggregated_columns": str(self.aggregated_columns),
            "count_filters": str(self.filters),
            "queries": self.query_count,
        }


def workload_statistics(
    queries: list[Query] | list[str],
    label: str = "",
) -> WorkloadStatistics:
    """Compute Table 4 statistics over a list of queries (AST or SQL)."""
    plain: list[float] = []
    aggregated: list[float] = []
    filters: list[float] = []
    for query in queries:
        if isinstance(query, str):
            query = parse_query(query)
        shape = query_shape(query)
        plain.append(float(len(shape.plain_columns)))
        aggregated.append(float(len(shape.aggregated_columns)))
        filters.append(float(shape.filter_count))
    return WorkloadStatistics(
        label=label,
        plain_columns=_mean_std(plain),
        aggregated_columns=_mean_std(aggregated),
        filters=_mean_std(filters),
        query_count=len(plain),
    )


def session_workload_statistics(
    logs: list[SessionLog], label: str = ""
) -> WorkloadStatistics:
    """Table 4 statistics over every query of one or more session logs."""
    queries: list[str] = []
    for log in logs:
        queries.extend(log.queries())
    return workload_statistics(queries, label)
