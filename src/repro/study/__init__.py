"""User-study reproduction (paper §6.4).

The paper recruited six analysts to explore two dashboards and six
experts to guess which logs were simulated. Offline we substitute
scripted components that preserve the study's quantitative artifacts:

- *analyst logs* are generated with human-like session settings (goal
  focus, no repeated dead-end queries);
- *expert judges* apply the exact discrimination strategy the paper's
  experts reported — flagging sessions that repeatedly emit zero-result
  queries;
- the same binomial test is run on the guesses.

Expected shape: near-chance guessing on the simpler Customer Service
dashboard, above-chance success on the filter-heavy IT Monitoring
dashboard (the paper observed 1/6 vs 5/6, p = .774 overall).
"""

from repro.study.discriminator import ExpertJudge, log_features
from repro.study.experiment import StudyResult, run_user_study

__all__ = ["ExpertJudge", "StudyResult", "log_features", "run_user_study"]
