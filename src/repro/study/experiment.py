"""The log-realism experiment (paper §6.4), end to end.

Protocol, mirroring the paper:

1. For each of the two study dashboards (IT Monitoring, Customer
   Service), generate a *reference* log with human-like settings (goal
   focused, errors not repeated) and a *SIMBA* log with the same
   randomization settings for both dashboards.
2. Six expert judges each see one (shuffled) pair per dashboard and
   guess which log is simulated.
3. A binomial test compares total successes against chance.

The paper found 6/12 correct guesses overall (p = .774): 5/6 on IT
Monitoring — whose many filters made SIMBA's fixed randomization level
too high, producing repeated empty-result queries — and 1/6 on Customer
Service, where the same settings are unobtrusive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from scipy import stats

from repro.dashboard.library import load_dashboard
from repro.engine.registry import create_engine
from repro.simulation.session import (
    SessionConfig,
    SessionLog,
    SessionSimulator,
)
from repro.simulation.workflows import get_workflow
from repro.study.discriminator import ExpertJudge, log_features
from repro.workload.datasets import generate_dataset

#: The two dashboards used in the paper's study.
STUDY_DASHBOARDS = ("it_monitor", "customer_service")

NUM_EXPERTS = 6


@dataclass
class StudyResult:
    """Outcome of the simulated user study."""

    successes_by_dashboard: dict[str, int] = field(default_factory=dict)
    guesses_by_dashboard: dict[str, int] = field(default_factory=dict)
    features: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def total_successes(self) -> int:
        return sum(self.successes_by_dashboard.values())

    @property
    def total_guesses(self) -> int:
        return sum(self.guesses_by_dashboard.values())

    @property
    def p_value(self) -> float:
        """Binomial test against chance guessing (the paper's test)."""
        if self.total_guesses == 0:
            return 1.0
        test = stats.binomtest(
            self.total_successes, self.total_guesses, p=0.5,
            alternative="greater",
        )
        return float(test.pvalue)

    def as_rows(self) -> list[dict[str, object]]:
        rows = []
        for dashboard in sorted(self.guesses_by_dashboard):
            rows.append(
                {
                    "dashboard": dashboard,
                    "correct_guesses": self.successes_by_dashboard[dashboard],
                    "total_guesses": self.guesses_by_dashboard[dashboard],
                }
            )
        rows.append(
            {
                "dashboard": "overall",
                "correct_guesses": self.total_successes,
                "total_guesses": self.total_guesses,
            }
        )
        return rows


def _simulate_log(
    dashboard: str,
    config: SessionConfig,
    rows: int,
    seed: int,
) -> SessionLog:
    spec = load_dashboard(dashboard)
    table = generate_dataset(dashboard, rows, seed=seed)
    reference = create_engine("vectorstore")
    reference.load_table(table)
    measured = create_engine("vectorstore")
    measured.load_table(table)
    workflow = get_workflow("shneiderman")
    goals = workflow.instantiate_for_dashboard(spec, random.Random(seed))
    simulator = SessionSimulator(
        spec,
        table,
        [g.query for g in goals],
        measured_engine=measured,
        reference_engine=reference,
        config=config,
        workflow_name="shneiderman",
    )
    return simulator.run()


def suppress_repeated_empty(log: SessionLog) -> SessionLog:
    """Synthesize human backtracking behaviour over a session log.

    The paper's experts noted analysts "would rarely repeat this error
    in the same session": after one empty visualization, a human backs
    off rather than triggering more. We keep the first empty-result
    interaction and drop later ones, which is how the analyst logs are
    synthesized for the study.
    """
    cleaned = SessionLog(
        dashboard=log.dashboard,
        engine=log.engine,
        workflow=log.workflow,
        goals_completed=log.goals_completed,
        goals_total=log.goals_total,
    )
    seen_empty = False
    for record in log.records:
        has_empty = record.empty_results > 0
        if record.interaction is not None and has_empty and seen_empty:
            continue
        if record.interaction is not None and has_empty:
            seen_empty = True
        cleaned.records.append(record)
    return cleaned


def run_user_study(
    seed: int = 0,
    rows: int = 4_000,
    num_experts: int = NUM_EXPERTS,
) -> StudyResult:
    """Run the full simulated study and return its statistics.

    ``SIMBA`` logs use one fixed, high randomization level for both
    dashboards — the paper's point is exactly that one setting does not
    fit all dashboards (P(Markov) pinned at 1 emulates that level).
    ``Human`` logs use the expert-analyst profile plus empty-repeat
    suppression, the behaviour the paper's experts described.
    """
    result = StudyResult()
    for dashboard in STUDY_DASHBOARDS:
        simba_log = _simulate_log(
            dashboard,
            SessionConfig(
                p_markov_initial=1.0,
                decay_rate=0.0,           # the "too high" fixed randomization
                markov_preset="uniform",  # unconstrained parameter choice
                max_total_steps=45,       # matched to analyst log length
                max_steps_per_goal=15,
                run_to_max=True,          # fixed-duration session
                seed=seed,
            ),
            rows,
            seed,
        )
        human_log = suppress_repeated_empty(
            _simulate_log(
                dashboard,
                SessionConfig.expert(seed=seed + 1),
                rows,
                seed + 1,
            )
        )
        result.features[dashboard] = {
            "simba_repeat_signal": log_features(simba_log).repeat_signal,
            "human_repeat_signal": log_features(human_log).repeat_signal,
            "simba_empty_fraction": log_features(simba_log).empty_fraction,
            "human_empty_fraction": log_features(human_log).empty_fraction,
        }
        successes = 0
        for expert_index in range(num_experts):
            judge_rng = random.Random(seed * 100 + expert_index)
            # Experts differ in how much repetition they need to see
            # before calling a log simulated.
            judge = ExpertJudge(
                sensitivity=0.08 * (0.75 + 0.5 * judge_rng.random()),
                rng=judge_rng,
            )
            # Shuffle which log the judge sees first.
            order_rng = random.Random(seed * 200 + expert_index)
            if order_rng.random() < 0.5:
                guessed = judge.guess_simulated(simba_log, human_log)
                correct = guessed == 0
            else:
                guessed = judge.guess_simulated(human_log, simba_log)
                correct = guessed == 1
            if correct:
                successes += 1
        result.successes_by_dashboard[dashboard] = successes
        result.guesses_by_dashboard[dashboard] = num_experts
    return result
