"""Scripted expert judges for the log-realism study.

The paper's experts reported one dominant strategy (§6.4): human
analysts occasionally trigger empty visualizations but "would rarely
repeat this error in the same session", whereas SIMBA's Markov phase can
re-emit zero-result queries. A judge therefore compares the *repeated
empty-result* signal between the two logs; when the signal is too weak
to call, the guess is a coin flip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.simulation.session import SessionLog


@dataclass(frozen=True)
class LogFeatures:
    """Discriminating features of one interaction log.

    An *empty event* is an interaction at least one of whose emitted
    queries returned zero rows (an empty visualization). Humans hit one
    occasionally; "repeatedly emitting SQL queries returning zero
    results" within a session is the experts' tell for SIMBA.
    """

    total_interactions: int
    total_queries: int
    empty_queries: int
    empty_events: int

    @property
    def repeated_empty_events(self) -> int:
        """Empty events beyond the first — the repetition humans avoid."""
        return max(0, self.empty_events - 1)

    @property
    def empty_fraction(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.empty_queries / self.total_queries

    @property
    def repeat_signal(self) -> float:
        """Repeated empty events per interaction."""
        if self.total_interactions == 0:
            return 0.0
        return self.repeated_empty_events / self.total_interactions


def log_features(log: SessionLog) -> LogFeatures:
    """Extract the judge-visible features from a session log."""
    empty_queries = 0
    empty_events = 0
    total_queries = 0
    interactions = 0
    for record in log.records:
        if record.interaction is not None:
            interactions += 1
        record_empties = 0
        for query in record.queries:
            total_queries += 1
            if query.rows_returned == 0:
                record_empties += 1
        empty_queries += record_empties
        if record_empties and record.interaction is not None:
            empty_events += 1
    return LogFeatures(
        total_interactions=interactions,
        total_queries=total_queries,
        empty_queries=empty_queries,
        empty_events=empty_events,
    )


class ExpertJudge:
    """One simulated expert comparing a (human, simulated) log pair."""

    def __init__(
        self,
        sensitivity: float = 0.08,
        rng: random.Random | None = None,
    ) -> None:
        #: Minimum repeat-signal difference the judge can perceive.
        self.sensitivity = sensitivity
        self.rng = rng or random.Random(0)

    def guess_simulated(
        self, log_a: SessionLog, log_b: SessionLog
    ) -> int:
        """Return 0 if the judge thinks ``log_a`` is simulated, else 1.

        The judge picks the log with the stronger repeated-empty-result
        signal; if the difference is below their sensitivity they have
        nothing to go on and flip a coin — which is what makes guesses
        on clean dashboards land at chance.
        """
        features_a = log_features(log_a)
        features_b = log_features(log_b)
        difference = features_a.repeat_signal - features_b.repeat_signal
        if abs(difference) < self.sensitivity:
            return self.rng.randint(0, 1)
        return 0 if difference > 0 else 1
