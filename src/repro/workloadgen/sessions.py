"""Interaction-session generation and deterministic replay.

:func:`generate_session` walks a live :class:`~repro.dashboard.state.DashboardState`
and records a seeded sequence of valid interactions — valid because
each step is drawn from ``available_interactions()`` *after* applying
the previous one, so replay can never hit an
:class:`~repro.errors.InteractionError`. Sessions serialize to JSON
(datetimes and tuples round-trip through a tiny tagged codec) so the
regression corpus can pin them byte-for-byte.

:meth:`GeneratedSession.replay` re-drives the session against an
engine under an :class:`~repro.execution.ExecutionPolicy`, returning
per-interaction statistics plus the raw result sets — the stress
matrix compares those results strictly (``columns ==`` and ``rows ==``)
across engines × policies.

:func:`run_idebench` bridges generated tables into the IDEBench
baseline (:mod:`repro.idebench.simulator`) for the unconstrained
stochastic workload the paper compares against.
"""

from __future__ import annotations

import datetime as dt
import json
import random
from dataclasses import dataclass, field

from repro.dashboard.spec import DashboardSpec
from repro.dashboard.state import DashboardState, Interaction, InteractionKind
from repro.engine.interface import ResultSet
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.idebench.simulator import (
    IDEBenchConfig,
    IDEBenchSimulator,
    IDEBenchWorkflow,
)
from repro.workloadgen.data import generate_table
from repro.workloadgen.schema import WorkloadSchema

#: Relative draw weight per interaction kind: sessions should mostly
#: manipulate filters (the paper's dominant gesture), with occasional
#: mark selections and clears.
_KIND_WEIGHTS = {
    InteractionKind.WIDGET_TOGGLE: 4,
    InteractionKind.WIDGET_SET: 2,
    InteractionKind.VIZ_SELECT: 2,
    InteractionKind.WIDGET_CLEAR: 1,
    InteractionKind.VIZ_CLEAR: 1,
}


# -- JSON codec for interaction values ---------------------------------------


def _encode_value(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return {"@seq": [_encode_value(v) for v in value]}
    if isinstance(value, dt.datetime):
        return {"@ts": value.isoformat()}
    if isinstance(value, dt.date):
        return {"@date": value.isoformat()}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict):
        if "@seq" in value:
            return tuple(_decode_value(v) for v in value["@seq"])
        if "@ts" in value:
            return dt.datetime.fromisoformat(value["@ts"])
        if "@date" in value:
            return dt.date.fromisoformat(value["@date"])
    return value


#: Public aliases: the serving tier's JSON protocol
#: (:mod:`repro.serving.protocol`) round-trips interaction values and
#: result rows through the same codec generated sessions use, so a
#: session recorded by one layer always replays through the other.
encode_value = _encode_value
decode_value = _decode_value


# -- replay record types -----------------------------------------------------


@dataclass(frozen=True)
class InteractionStats:
    """What one replayed interaction cost and returned."""

    step: int
    description: str
    queries: int
    rows: int
    duration_ms: float
    #: Result set per refreshed visualization, for identity comparison.
    results: dict[str, ResultSet] = field(repr=False, default_factory=dict)


@dataclass(frozen=True)
class ReplayLog:
    """A full replay: initial render (step 0) plus one entry per step."""

    dashboard: str
    engine: str
    policy: str
    records: tuple[InteractionStats, ...]

    @property
    def total_queries(self) -> int:
        return sum(r.queries for r in self.records)

    def identity_signature(self) -> list[tuple[int, dict]]:
        """Canonical (step, {viz: (columns, sorted rows)}) structure.

        Two replays of the same session are *byte-identical* iff their
        signatures compare equal — rows are sorted by ``repr`` because
        result order is not part of the identity contract for
        unordered grouped queries.
        """
        signature = []
        for record in self.records:
            payload = {
                viz_id: (
                    tuple(rs.columns),
                    tuple(sorted(rs.rows, key=repr)),
                )
                for viz_id, rs in sorted(record.results.items())
            }
            signature.append((record.step, payload))
        return signature


# -- generated sessions ------------------------------------------------------


@dataclass(frozen=True)
class GeneratedSession:
    """A seeded, valid-by-construction interaction sequence."""

    dashboard: str
    seed: int
    steps: tuple[Interaction, ...]

    def to_dict(self) -> dict:
        return {
            "dashboard": self.dashboard,
            "seed": self.seed,
            "steps": [
                {
                    "kind": step.kind.value,
                    "target": step.target,
                    "value": _encode_value(step.value),
                }
                for step in self.steps
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "GeneratedSession":
        return cls(
            dashboard=data["dashboard"],
            seed=data["seed"],
            steps=tuple(
                Interaction(
                    InteractionKind(step["kind"]),
                    step.get("target"),
                    _decode_value(step.get("value")),
                )
                for step in data["steps"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "GeneratedSession":
        return cls.from_dict(json.loads(text))

    def replay(
        self,
        spec: DashboardSpec,
        table: Table,
        engine,
        policy=None,
    ) -> ReplayLog:
        """Re-drive the session; step 0 is the initial dashboard render."""
        from repro.execution import coerce_policy

        resolved = coerce_policy(policy) if policy is not None else None
        state = DashboardState(spec, table)
        records = [
            _stats(0, "initial render", state.refresh(engine, policy=policy))
        ]
        for index, step in enumerate(self.steps, start=1):
            results = state.apply_and_refresh(step, engine, policy=policy)
            records.append(_stats(index, step.describe(), results))
        return ReplayLog(
            dashboard=self.dashboard,
            engine=engine.name,
            policy=resolved.describe() if resolved else "default",
            records=tuple(records),
        )


def _stats(step: int, description: str, results: dict) -> InteractionStats:
    return InteractionStats(
        step=step,
        description=description,
        queries=len(results),
        rows=sum(r.rows_returned for r in results.values()),
        duration_ms=sum(r.duration_ms for r in results.values()),
        results={
            viz_id: timed.result for viz_id, timed in results.items()
        },
    )


def generate_session(
    spec: DashboardSpec,
    table: Table,
    length: int = 6,
    seed: int = 0,
) -> GeneratedSession:
    """A seeded interaction sequence, valid at every step.

    Each step is drawn (kind-weighted) from the interactions the
    dashboard actually offers in its *current* state, then applied, so
    later steps see the updated widget/selection state exactly as the
    replay will.
    """
    if length < 1:
        raise ConfigError(f"session length must be >= 1, got {length}")
    rng = random.Random(
        f"workloadgen:session:{spec.name}:{seed}:{length}"
    )
    state = DashboardState(spec, table)
    steps: list[Interaction] = []
    for _ in range(length):
        actions = state.available_interactions()
        if not actions:
            break
        weights = [_KIND_WEIGHTS.get(a.kind, 1) for a in actions]
        action = rng.choices(actions, weights=weights, k=1)[0]
        state.apply_affected(action)
        steps.append(action)
    return GeneratedSession(
        dashboard=spec.name, seed=seed, steps=tuple(steps)
    )


# -- IDEBench bridge ---------------------------------------------------------


def idebench_config(seed: int = 0, **overrides) -> IDEBenchConfig:
    """An IDEBench config sized for generated tables (small, seeded)."""
    defaults = dict(
        min_operations=20,
        max_operations=30,
        max_visualizations=8,
        seed=seed,
    )
    defaults.update(overrides)
    return IDEBenchConfig(**defaults)


def run_idebench(
    schema: WorkloadSchema,
    num_rows: int = 800,
    seed: int = 0,
    engine=None,
    config: IDEBenchConfig | None = None,
) -> IDEBenchWorkflow:
    """Run the IDEBench baseline over a generated table.

    With ``engine`` given, every emitted query is executed and timed
    (``workflow.timed``), matching how the paper's baseline comparison
    measures the unconstrained stochastic workload.
    """
    table = generate_table(schema, num_rows, seed=seed)
    if engine is not None:
        engine.load_table(table)
    simulator = IDEBenchSimulator(
        table, config or idebench_config(seed), engine
    )
    return simulator.run()
