"""Intent generators: seeded schemas -> valid dashboard specifications.

:func:`generate_dashboard` emits a :class:`~repro.dashboard.spec.DashboardSpec`
for a :class:`~repro.workloadgen.schema.WorkloadSchema`. The spec uses
the exact JSON schema of the six hand-written dashboards, so
``DashboardSpec.from_json`` loads generated files unchanged, and it
passes :meth:`~repro.dashboard.spec.DashboardSpec.validate` *by
construction* — components only reference columns the schema declares,
widget targets only reference emitted components.

Every generated dashboard includes three **anchor components**:

- ``v_anchor`` — a selectable bar chart, one categorical dimension ×
  ``sum(measure)``;
- ``v_total`` — an unselectable stat panel computing the same
  ``sum(measure)`` with no grouping;
- ``w_anchor`` — a checkbox widget on the anchor category targeting
  every visualization.

This triple guarantees :func:`repro.simulation.goalgen.generate_goal`
can always instantiate the ``"filtering"`` template (the stat panel is
reachable from a component filtering the anchor category — the paper's
Figure 3 "iterative" pattern), so generated dashboards plug into the
session simulator without per-spec special cases.

The remaining structure is drawn from the seed: extra trend / breakdown
/ spread / detail visualizations, extra widgets (dropdown, multiselect,
range slider, date range), and viz-to-viz links.
"""

from __future__ import annotations

import random

from repro.dashboard.spec import (
    DashboardSpec,
    DimensionSpec,
    InterfaceSpec,
    LinkSpec,
    MeasureSpec,
    VisualizationSpec,
    WidgetSpec,
)
from repro.workloadgen.schema import WorkloadSchema


def _trend_viz(
    rng: random.Random, schema: WorkloadSchema, viz_id: str
) -> VisualizationSpec | None:
    timestamps = schema.by_role("timestamp")
    if not timestamps:
        return None
    ts = rng.choice(timestamps)
    unit = rng.choice(("day", "hour"))
    agg = rng.choice(("sum", "avg", "count"))
    measure = rng.choice(schema.by_role("measure"))
    return VisualizationSpec(
        id=viz_id,
        type=rng.choice(("line", "area")),
        dimensions=(DimensionSpec(ts.name, bin=unit),),
        measures=(MeasureSpec(agg, measure.name),),
        title=f"{agg} {measure.name} per {unit}",
        selectable=False,
    )


def _breakdown_viz(
    rng: random.Random, schema: WorkloadSchema, viz_id: str
) -> VisualizationSpec:
    cat = rng.choice(schema.by_role("category"))
    measures: list[MeasureSpec] = [MeasureSpec("count", None)]
    if rng.random() < 0.6:
        measures.append(
            MeasureSpec(
                rng.choice(("sum", "avg")),
                rng.choice(schema.by_role("measure")).name,
            )
        )
    return VisualizationSpec(
        id=viz_id,
        type=rng.choice(("pie", "bar", "table")),
        dimensions=(DimensionSpec(cat.name),),
        measures=tuple(measures),
        title=f"breakdown by {cat.name}",
        selectable=rng.random() < 0.5,
    )


def _spread_viz(
    rng: random.Random, schema: WorkloadSchema, viz_id: str
) -> VisualizationSpec:
    measure = rng.choice(schema.by_role("measure"))
    aggs = rng.sample(("min", "max", "avg"), rng.randint(1, 2))
    return VisualizationSpec(
        id=viz_id,
        type="stat",
        measures=tuple(MeasureSpec(a, measure.name) for a in sorted(aggs)),
        title=f"spread of {measure.name}",
        selectable=False,
    )


def _detail_viz(
    rng: random.Random, schema: WorkloadSchema, viz_id: str
) -> VisualizationSpec | None:
    identifiers = schema.by_role("identifier")
    if not identifiers:
        return None
    ident = rng.choice(identifiers)
    measure = rng.choice(schema.by_role("measure"))
    return VisualizationSpec(
        id=viz_id,
        type="table",
        dimensions=(DimensionSpec(ident.name),),
        measures=(
            MeasureSpec("count", None),
            MeasureSpec("sum", measure.name),
        ),
        title=f"per-{ident.name} detail",
        selectable=False,
    )


_EXTRA_KINDS = ("trend", "breakdown", "spread", "detail")


def generate_dashboard(
    schema: WorkloadSchema, index: int = 0, seed: int = 0
) -> DashboardSpec:
    """One valid dashboard over ``schema``, determined by (index, seed)."""
    rng = random.Random(
        f"workloadgen:intent:{schema.name}:{seed}:{index}"
    )
    categories = schema.by_role("category")
    measures = schema.by_role("measure")
    anchor_cat = rng.choice(categories)
    anchor_measure = rng.choice(measures)

    visualizations: list[VisualizationSpec] = [
        VisualizationSpec(
            id="v_anchor",
            type="bar",
            dimensions=(DimensionSpec(anchor_cat.name),),
            measures=(MeasureSpec("sum", anchor_measure.name),),
            title=f"sum {anchor_measure.name} by {anchor_cat.name}",
            selectable=True,
        ),
        VisualizationSpec(
            id="v_total",
            type="stat",
            measures=(MeasureSpec("sum", anchor_measure.name),),
            title=f"total {anchor_measure.name}",
            selectable=False,
        ),
    ]
    for extra_index in range(rng.randint(1, 3)):
        kind = rng.choice(_EXTRA_KINDS)
        builder = {
            "trend": _trend_viz,
            "breakdown": _breakdown_viz,
            "spread": _spread_viz,
            "detail": _detail_viz,
        }[kind]
        viz = builder(rng, schema, f"v_{kind}_{extra_index}")
        if viz is not None:
            visualizations.append(viz)

    viz_ids = tuple(v.id for v in visualizations)
    widgets: list[WidgetSpec] = [
        WidgetSpec(
            id="w_anchor",
            type="checkbox",
            column=anchor_cat.name,
            targets=viz_ids,
            title=f"filter {anchor_cat.name}",
        )
    ]
    other_cats = [c for c in categories if c.name != anchor_cat.name]
    if other_cats and rng.random() < 0.7:
        cat = rng.choice(other_cats)
        widgets.append(
            WidgetSpec(
                id="w_cat",
                type=rng.choice(("dropdown", "multiselect", "radio")),
                column=cat.name,
                targets=viz_ids,
                title=f"filter {cat.name}",
            )
        )
    if rng.random() < 0.5:
        measure = rng.choice(measures)
        widgets.append(
            WidgetSpec(
                id="w_range",
                type="range_slider",
                column=measure.name,
                targets=viz_ids,
                title=f"restrict {measure.name}",
            )
        )
    timestamps = schema.by_role("timestamp")
    if timestamps and rng.random() < 0.35:
        ts = rng.choice(timestamps)
        widgets.append(
            WidgetSpec(
                id="w_dates",
                type="date_range",
                column=ts.name,
                targets=viz_ids,
                title=f"restrict {ts.name}",
            )
        )

    links: list[LinkSpec] = []
    selectable = [
        v.id
        for v in visualizations
        if v.selectable and any(d.bin is None for d in v.dimensions)
    ]
    for target in viz_ids:
        if (
            selectable
            and target not in selectable
            and rng.random() < 0.4
        ):
            links.append(LinkSpec(rng.choice(selectable), target))

    return DashboardSpec(
        name=f"{schema.name}_gen_{index:03d}",
        dashboard_type="generated",
        database=schema.database_spec(),
        interface=InterfaceSpec(
            visualizations=tuple(visualizations),
            widgets=tuple(widgets),
            links=tuple(links),
        ),
        description=(
            f"Synthetic dashboard #{index} over {schema.name} "
            f"(workloadgen seed {seed})."
        ),
    )


def generate_dashboards(
    schema: WorkloadSchema, count: int, seed: int = 0
) -> list[DashboardSpec]:
    """``count`` dashboards over one schema, deterministic per seed."""
    return [
        generate_dashboard(schema, index=i, seed=seed) for i in range(count)
    ]
