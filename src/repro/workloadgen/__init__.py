"""Seeded synthetic workload generator (schemas -> dashboards -> sessions).

The test suite's stress matrix lives here: typed workload schemas
(:mod:`~repro.workloadgen.schema`), deterministic data
(:mod:`~repro.workloadgen.data`), valid-by-construction dashboard specs
(:mod:`~repro.workloadgen.intents`), augmentation passes
(:mod:`~repro.workloadgen.augment`), adversarial presets
(:mod:`~repro.workloadgen.presets`), and replayable interaction
sessions (:mod:`~repro.workloadgen.sessions`). See
``docs/ARCHITECTURE.md`` ("Workload generation") for the tour.
"""

from repro.workloadgen.augment import (
    scale_cardinality,
    star_dimensions,
    sweep_filter_selectivity,
    widen_group_by,
)
from repro.workloadgen.data import generate_table
from repro.workloadgen.intents import generate_dashboard, generate_dashboards
from repro.workloadgen.presets import (
    ADVERSARIAL_PRESETS,
    PRESET_NAMES,
    GeneratedWorkload,
    generate_corpus,
    generate_preset,
)
from repro.workloadgen.schema import (
    SCHEMA_NAMES,
    FieldSpec,
    WorkloadSchema,
    category,
    identifier,
    measure,
    timestamp,
    workload_schema,
)
from repro.workloadgen.sessions import (
    GeneratedSession,
    InteractionStats,
    ReplayLog,
    generate_session,
    idebench_config,
    run_idebench,
)

__all__ = [
    "ADVERSARIAL_PRESETS",
    "FieldSpec",
    "GeneratedSession",
    "GeneratedWorkload",
    "InteractionStats",
    "PRESET_NAMES",
    "ReplayLog",
    "SCHEMA_NAMES",
    "WorkloadSchema",
    "category",
    "generate_corpus",
    "generate_dashboard",
    "generate_dashboards",
    "generate_preset",
    "generate_session",
    "generate_table",
    "idebench_config",
    "identifier",
    "measure",
    "run_idebench",
    "scale_cardinality",
    "star_dimensions",
    "sweep_filter_selectivity",
    "timestamp",
    "widen_group_by",
    "workload_schema",
]
