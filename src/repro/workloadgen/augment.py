"""Augmentation passes over generated schemas and dashboards.

Each pass transforms a workload toward one optimizer's documented
stress regime:

- :func:`scale_cardinality` — multiply category/identifier
  cardinalities (GROUP BY result width, rollup cost);
- :func:`widen_group_by` — add one visualization per extra column so
  the *union* of unfiltered group keys grows, which is exactly the
  multiplan evaluator's worst case (its combined single pass groups by
  the union of all plans' keys);
- :func:`sweep_filter_selectivity` — spec variants whose anchor widget
  is pinned to progressively smaller option subsets, down to a
  guaranteed-empty filter (the ``empty_result_filters`` preset's
  mechanism);
- :func:`star_dimensions` — map a schema's ``derived_from`` functional
  dependencies onto :func:`repro.workload.normalize.normalize_star`
  dimension specs, enabling join-reassembly workloads via
  ``engine/join.py``.

All passes are pure: they return new spec/schema values and never
mutate their inputs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.dashboard.spec import (
    DashboardSpec,
    DimensionSpec,
    MeasureSpec,
    VisualizationSpec,
    WidgetSpec,
)
from repro.errors import ConfigError
from repro.workload.normalize import DimensionSpec as StarDimensionSpec
from repro.workloadgen.data import member_name
from repro.workloadgen.schema import WorkloadSchema


def scale_cardinality(
    schema: WorkloadSchema, factor: float, roles: tuple[str, ...] = (
        "category", "identifier",
    )
) -> WorkloadSchema:
    """Scale the cardinality of every field in ``roles`` by ``factor``."""
    if factor <= 0:
        raise ConfigError(f"cardinality factor must be > 0, got {factor}")
    return replace(
        schema,
        fields=tuple(
            replace(f, cardinality=max(1, int(f.cardinality * factor)))
            if f.role in roles
            else f
            for f in schema.fields
        ),
    )


def widen_group_by(
    spec: DashboardSpec,
    schema: WorkloadSchema,
    columns: tuple[str, ...] | None = None,
) -> DashboardSpec:
    """Add one bar chart per column, widening the group-key union.

    The multiplan evaluator folds every *unfiltered* visualization into
    one pass grouped by the union of their keys; each added chart
    contributes a fresh key, so the combined grouping's cardinality
    approaches the product of the per-column cardinalities (bounded by
    the row count) — its documented losing regime.
    """
    if columns is None:
        columns = tuple(
            f.name
            for f in schema.fields
            if f.role in ("category", "identifier")
        )
    measure = schema.by_role("measure")[0]
    existing = spec.interface.component_ids
    added = []
    for column in columns:
        schema.field(column)  # raise early on unknown columns
        viz_id = f"v_wide_{column}"
        if viz_id in existing:
            continue
        added.append(
            VisualizationSpec(
                id=viz_id,
                type="bar",
                dimensions=(DimensionSpec(column),),
                measures=(MeasureSpec("sum", measure.name),),
                title=f"sum {measure.name} by {column}",
                selectable=False,
            )
        )
    interface = replace(
        spec.interface,
        visualizations=spec.interface.visualizations + tuple(added),
    )
    return replace(spec, interface=interface)


def sweep_filter_selectivity(
    spec: DashboardSpec,
    schema: WorkloadSchema,
    column: str,
    fractions: tuple[float, ...] = (1.0, 0.5, 0.25, 0.0),
) -> list[tuple[float, DashboardSpec]]:
    """Spec variants with the ``column`` widget pinned per selectivity.

    For fraction ``f`` the widget's options cover the first
    ``ceil(f * cardinality)`` members of the category; ``0.0`` pins a
    member the data generator *never emits* (plus one real member,
    because the widget runtime defines "every option selected" as no
    filter), so toggling the absent member alone yields empty results
    (byte-identity must still hold on empty result sets — that is the
    point of the ``empty_result_filters`` preset).
    """
    field = schema.field(column)
    if field.role not in ("category", "identifier"):
        raise ConfigError(
            f"selectivity sweeps need a category/identifier column, "
            f"{column!r} is a {field.role}"
        )
    variants: list[tuple[float, DashboardSpec]] = []
    for fraction in fractions:
        if fraction <= 0.0:
            options: tuple[object, ...] = (
                f"{column}_absent",
                member_name(field, 0),
            )
        else:
            count = max(1, min(
                field.cardinality,
                int(field.cardinality * fraction + 0.999999),
            ))
            options = tuple(
                member_name(field, i) for i in range(count)
            )
        widgets = tuple(
            replace(w, options=options) if w.column == column else w
            for w in spec.interface.widgets
        )
        if not any(w.column == column for w in widgets):
            targets = tuple(
                v.id for v in spec.interface.visualizations
            )
            widgets = widgets + (
                WidgetSpec(
                    id=f"w_sweep_{column}",
                    type="checkbox",
                    column=column,
                    targets=targets,
                    options=options,
                ),
            )
        interface = replace(spec.interface, widgets=widgets)
        variants.append(
            (fraction, replace(spec, interface=interface))
        )
    return variants


def star_dimensions(schema: WorkloadSchema) -> list[StarDimensionSpec]:
    """The star-schema dimensions a schema's functional deps imply.

    One dimension per identifier that has ``derived_from`` categories:
    the identifier is the key, its derived categories the attributes.
    The data generator computes derived values as pure functions of the
    identifier index, so ``normalize_star(strict=True)`` always accepts
    generated tables.
    """
    dimensions: list[StarDimensionSpec] = []
    for ident in schema.by_role("identifier"):
        attributes = tuple(
            f.name
            for f in schema.fields
            if f.derived_from == ident.name
        )
        if attributes:
            dimensions.append(
                StarDimensionSpec(
                    name=ident.name, key=ident.name, attributes=attributes
                )
            )
    return dimensions
