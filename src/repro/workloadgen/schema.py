"""Typed schema library for synthetic workload generation.

A :class:`WorkloadSchema` describes a table the way the *generator*
thinks about it — every field carries a semantic role:

- ``measure``     — a quantitative column aggregates run over;
- ``timestamp``   — a temporal column line charts bin and brushes filter;
- ``category``    — a low/medium-cardinality string column used for
  grouping and membership filters, with controllable cardinality and a
  Zipf-style skew knob;
- ``identifier``  — a high-cardinality string key (session ids, device
  ids). Category fields may declare ``derived_from=<identifier>``,
  which makes them *functionally dependent* on that identifier — the
  exact shape :func:`repro.workload.normalize.normalize_star` extracts
  into star-schema dimension tables.

Roles are what make generated dashboards *valid by construction*: the
intent generators (:mod:`repro.workloadgen.intents`) only group by
category/identifier fields, only aggregate measure fields, and only bin
timestamp fields, so every emitted spec passes
:meth:`~repro.dashboard.spec.DashboardSpec.validate`.

Determinism contract: schemas are frozen values; the data generator
(:mod:`repro.workloadgen.data`) derives all randomness from string
seeds (``random.Random(str)`` seeds via SHA-512, stable across
processes and Python versions), and measure floats land on a dyadic
grid (quarters) by default so SUM/AVG are IEEE-exact under every
:class:`~repro.execution.ExecutionPolicy` — the property the stress
matrix's byte-identity assertions rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dashboard.spec import ColumnSpec, DatabaseSpec
from repro.engine.table import ColumnDef, Schema
from repro.engine.types import DataType
from repro.errors import ConfigError

#: The semantic roles a field can carry.
FIELD_ROLES = ("measure", "timestamp", "category", "identifier")


@dataclass(frozen=True)
class FieldSpec:
    """One field of a workload schema: a name, a role, and knobs.

    Only the knobs relevant to the role are read:

    - category/identifier: ``cardinality`` (and ``skew`` for
      categories — 0.0 is uniform, larger concentrates mass on the
      first members Zipf-style; ``derived_from`` pins the value to a
      function of an identifier field, creating a functional
      dependency);
    - measure: ``low``/``high`` value bounds, ``integer`` for an
      integer column, ``dyadic`` to snap float values to quarters so
      sums are exactly associative;
    - timestamp: ``span_days`` of generated history.
    """

    name: str
    role: str
    cardinality: int = 8
    skew: float = 0.0
    derived_from: str | None = None
    low: int = 0
    high: int = 100
    integer: bool = False
    dyadic: bool = True
    span_days: int = 30

    def __post_init__(self) -> None:
        if self.role not in FIELD_ROLES:
            raise ConfigError(
                f"field {self.name!r} has unknown role {self.role!r}; "
                f"expected one of {FIELD_ROLES}"
            )
        if self.role in ("category", "identifier") and self.cardinality < 1:
            raise ConfigError(
                f"field {self.name!r} needs cardinality >= 1"
            )
        if self.role == "measure" and self.low >= self.high:
            raise ConfigError(
                f"measure {self.name!r} needs low < high "
                f"(got {self.low}..{self.high})"
            )
        if self.derived_from is not None and self.role != "category":
            raise ConfigError(
                f"field {self.name!r}: only category fields can be "
                f"derived_from an identifier"
            )

    @property
    def dtype(self) -> DataType:
        if self.role == "measure":
            return DataType.INTEGER if self.integer else DataType.FLOAT
        if self.role == "timestamp":
            return DataType.TIMESTAMP
        return DataType.STRING


def measure(
    name: str,
    low: int = 0,
    high: int = 100,
    integer: bool = False,
    dyadic: bool = True,
) -> FieldSpec:
    """A quantitative field aggregates run over."""
    return FieldSpec(
        name, "measure", low=low, high=high, integer=integer, dyadic=dyadic
    )


def timestamp(name: str, span_days: int = 30) -> FieldSpec:
    """A temporal field with ``span_days`` of generated history."""
    return FieldSpec(name, "timestamp", span_days=span_days)


def category(
    name: str,
    cardinality: int = 8,
    skew: float = 0.0,
    derived_from: str | None = None,
) -> FieldSpec:
    """A groupable/filterable string field of the given cardinality."""
    return FieldSpec(
        name,
        "category",
        cardinality=cardinality,
        skew=skew,
        derived_from=derived_from,
    )


def identifier(name: str, cardinality: int = 1000) -> FieldSpec:
    """A high-cardinality key field (the GROUP BY worst case)."""
    return FieldSpec(name, "identifier", cardinality=cardinality)


@dataclass(frozen=True)
class WorkloadSchema:
    """A named table description the generators instantiate.

    ``name`` doubles as the generated table's name and the
    ``database.table`` of every dashboard spec emitted over it.
    """

    name: str
    fields: tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate field names in schema: {names}")
        by_name = {f.name: f for f in self.fields}
        for field in self.fields:
            if field.derived_from is not None:
                parent = by_name.get(field.derived_from)
                if parent is None or parent.role != "identifier":
                    raise ConfigError(
                        f"field {field.name!r} derived_from "
                        f"{field.derived_from!r}, which is not an "
                        f"identifier field of schema {self.name!r}"
                    )
        if not self.by_role("measure"):
            raise ConfigError(f"schema {self.name!r} needs >= 1 measure")
        if not self.by_role("category"):
            raise ConfigError(f"schema {self.name!r} needs >= 1 category")

    def by_role(self, role: str) -> list[FieldSpec]:
        """All fields carrying the given semantic role, in order."""
        if role not in FIELD_ROLES:
            raise ConfigError(f"unknown role {role!r}")
        return [f for f in self.fields if f.role == role]

    def field(self, name: str) -> FieldSpec:
        for field in self.fields:
            if field.name == name:
                return field
        raise ConfigError(
            f"unknown field {name!r} in schema {self.name!r}"
        )

    def engine_schema(self) -> Schema:
        """The generated table's engine-level schema."""
        return Schema([ColumnDef(f.name, f.dtype) for f in self.fields])

    def database_spec(self) -> DatabaseSpec:
        """The Database Specification every generated dashboard embeds."""
        return DatabaseSpec(
            table=self.name,
            columns=tuple(
                ColumnSpec(f.name, f.dtype.value) for f in self.fields
            ),
        )

    def evolve_field(self, name: str, **changes: object) -> "WorkloadSchema":
        """A copy with one field's knobs replaced (re-validated)."""
        self.field(name)  # raise early on unknown names
        return replace(
            self,
            fields=tuple(
                replace(f, **changes) if f.name == name else f
                for f in self.fields
            ),
        )


# ---------------------------------------------------------------------------
# Built-in schemas: three table shapes the six hand-written dashboards
# do not cover (clickstream, star-shaped retail, vehicle telemetry).
# ---------------------------------------------------------------------------


def _web_analytics() -> WorkloadSchema:
    """Clickstream events: skewed page popularity, many sessions."""
    return WorkloadSchema(
        "web_analytics",
        (
            category("page", cardinality=40, skew=1.1),
            category("country", cardinality=12),
            category("device", cardinality=3),
            identifier("session_id", cardinality=2500),
            category("user_tier", cardinality=4, derived_from="session_id"),
            measure("hits", low=1, high=20, integer=True),
            measure("latency_ms", low=0, high=800),
            timestamp("ts", span_days=14),
        ),
    )


def _retail_sales() -> WorkloadSchema:
    """Order lines over a store dimension (star-schema friendly)."""
    return WorkloadSchema(
        "retail_sales",
        (
            identifier("store_id", cardinality=60),
            category("region", cardinality=12, derived_from="store_id"),
            category("banner", cardinality=4, derived_from="store_id"),
            category("product_line", cardinality=8, skew=0.8),
            category("promo", cardinality=2),
            measure("units", low=1, high=12, integer=True),
            measure("revenue", low=1, high=500),
            timestamp("sold_at", span_days=90),
        ),
    )


def _fleet_telemetry() -> WorkloadSchema:
    """Vehicle telemetry: one identifier per vehicle, dense measures."""
    return WorkloadSchema(
        "fleet_telemetry",
        (
            identifier("vehicle_id", cardinality=240),
            category("depot", cardinality=10, derived_from="vehicle_id"),
            category("route", cardinality=25, skew=0.6),
            category("status", cardinality=4),
            measure("speed", low=0, high=120),
            measure("fuel_pct", low=0, high=100),
            measure("stops", low=0, high=30, integer=True),
            timestamp("ts", span_days=7),
        ),
    )


_BUILTIN = {
    "web_analytics": _web_analytics,
    "retail_sales": _retail_sales,
    "fleet_telemetry": _fleet_telemetry,
}

#: The built-in workload schemas, by name.
SCHEMA_NAMES = tuple(sorted(_BUILTIN))


def workload_schema(name: str) -> WorkloadSchema:
    """Build one of the built-in workload schemas by name."""
    try:
        return _BUILTIN[name]()
    except KeyError:
        raise ConfigError(
            f"unknown workload schema {name!r}; available: "
            f"{list(SCHEMA_NAMES)}"
        ) from None
