"""Deterministic data generation for workload schemas.

:func:`generate_table` turns a :class:`~repro.workloadgen.schema.WorkloadSchema`
into an engine :class:`~repro.engine.table.Table`. Three properties the
rest of the stress matrix depends on:

- **Determinism** — all randomness comes from ``random.Random`` seeded
  with a *string* (``"workloadgen:data:{schema}:{seed}"``). String
  seeding hashes via SHA-512, which is stable across processes and
  Python versions, unlike ``hash()``; the generated rows are therefore
  byte-reproducible anywhere the corpus hashes are checked.
- **Dyadic measures** — float measures land on a quarter grid (or are
  integers) by default, so SUM/AVG merges are exactly associative and
  results stay *byte-identical* under sharding and multiplan rollups,
  not merely close. Set ``dyadic=False`` on a field to opt out (the
  cross-engine tests then need tolerant comparison).
- **Functional dependencies** — a category with
  ``derived_from=<identifier>`` is computed from the identifier's
  index, so ``normalize_star(strict=True)`` always accepts the table.
"""

from __future__ import annotations

import datetime as dt
import random

from repro.engine.table import Table
from repro.workloadgen.schema import FieldSpec, WorkloadSchema

#: Fixed epoch for generated timestamps (no wall-clock dependence).
EPOCH = dt.datetime(2024, 3, 1)


def _skew_weights(cardinality: int, skew: float) -> list[float]:
    """Zipf-style cumulative weights: member ``i`` gets ``1/(i+1)^skew``."""
    weights = [1.0 / (i + 1) ** skew for i in range(cardinality)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    return cumulative


def _pick_skewed(rng: random.Random, cumulative: list[float]) -> int:
    point = rng.random()
    for index, bound in enumerate(cumulative):
        if point <= bound:
            return index
    return len(cumulative) - 1


def member_name(field: FieldSpec, index: int) -> str:
    """The ``index``-th value of a category/identifier field."""
    return f"{field.name}_{index:04d}"


def derived_member(field: FieldSpec, parent_index: int) -> str:
    """The value a derived category takes for one identifier member.

    A pure function of the parent index, which is what gives the table
    the functional dependency ``identifier -> derived category``.
    """
    return member_name(field, parent_index % field.cardinality)


def _measure_value(rng: random.Random, field: FieldSpec) -> object:
    if field.integer:
        return rng.randrange(field.low, field.high + 1)
    if field.dyadic:
        # Quarter grid: sums of quarters are exact in IEEE-754, so
        # sharded/multiplan float rollups match serial bit-for-bit.
        return rng.randrange(field.low * 4, field.high * 4 + 1) / 4.0
    return rng.uniform(field.low, field.high)


def generate_table(
    schema: WorkloadSchema, num_rows: int, seed: int = 0
) -> Table:
    """Generate ``num_rows`` rows of ``schema``, fully seed-determined."""
    rng = random.Random(f"workloadgen:data:{schema.name}:{seed}")
    columns: dict[str, list[object]] = {f.name: [] for f in schema.fields}

    categorical = [
        f for f in schema.fields
        if f.role == "category" and f.derived_from is None
    ]
    identifiers = schema.by_role("identifier")
    derived = [
        f for f in schema.fields
        if f.role == "category" and f.derived_from is not None
    ]
    measures = schema.by_role("measure")
    timestamps = schema.by_role("timestamp")
    cumulative = {
        f.name: _skew_weights(f.cardinality, f.skew) for f in categorical
    }

    for _ in range(num_rows):
        # Identifier indices first: derived categories are functions of
        # them, so draw order fixes the functional dependency.
        id_index = {
            f.name: rng.randrange(f.cardinality) for f in identifiers
        }
        for field in identifiers:
            columns[field.name].append(
                member_name(field, id_index[field.name])
            )
        for field in derived:
            columns[field.name].append(
                derived_member(field, id_index[field.derived_from])
            )
        for field in categorical:
            index = (
                _pick_skewed(rng, cumulative[field.name])
                if field.skew > 0.0
                else rng.randrange(field.cardinality)
            )
            columns[field.name].append(member_name(field, index))
        for field in measures:
            columns[field.name].append(_measure_value(rng, field))
        for field in timestamps:
            offset = rng.randrange(field.span_days * 86400)
            columns[field.name].append(EPOCH + dt.timedelta(seconds=offset))

    return Table.from_columns(
        schema.name, columns, schema=schema.engine_schema()
    )
