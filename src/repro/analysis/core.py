"""Core of the project-specific static-analysis suite.

The concurrent stack built in PRs 2–9 rests on conventions the code
states in prose — lock ordering, ``ACTIVE``-guarded telemetry, every
``SharedMemory(create=True)`` paired with an unlink path, frozen
execution policies, no bare threads outside the pool packages. This
module is the enforcement half: a tiny rule framework over stdlib
:mod:`ast` (the repo's zero-dependency rule applies to its linters
too) that parses each source file once, hands the tree to every
registered rule, and reconciles the findings against inline
suppressions and a checked-in baseline.

Vocabulary
----------

Finding
    One violation: stable code (``RA101``…), file, line, message, and
    the enclosing ``Class.method`` symbol. The *fingerprint* —
    ``sha256(code|path|symbol|message)`` — deliberately excludes the
    line number so baselines survive unrelated edits above a finding.

Suppression
    ``# repro: allow(RA106) — reason`` on the offending line, or on a
    comment line directly above it. The reason is mandatory; a
    suppression without one, with an unknown code, or matching no
    finding is itself reported (``RA100``) so allows cannot rot.

Baseline
    A JSON file of fingerprints with reasons, for findings accepted
    wholesale (e.g. when adopting a new rule on an old tree). Entries
    that no longer match anything are *stale* and fail ``--strict``.

Adding a rule is one file: subclass :class:`Rule`, decorate with
:func:`register`, and import the module from
``repro.analysis.rules.__init__`` — the registry does the rest (CLI,
``--json`` counts, baseline, docs table).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ConfigError

#: Framework-level hygiene code: malformed / unknown / unused
#: suppressions. Not a registered Rule — it polices the escape hatch.
SUPPRESSION_CODE = "RA100"

#: Comment form ``repro: allow(<code>) <dash> <reason>`` — accepts an
#: em-dash, ``--``, ``-`` or ``:`` before the reason, and is matched
#: anywhere in a comment token so it can trail code. (This very
#: comment spells the syntax with placeholders precisely so the
#: scanner does not read it as a live suppression.)
_SUPPRESS = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\s]*?)\s*\)"
    r"\s*(?:(?:—|--|-|:)\s*(\S.*?))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str  # repo-relative posix path
    line: int
    code: str
    message: str
    symbol: str = ""  # enclosing ``Class.method`` (or module)

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        raw = f"{self.code}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.code} {self.message}{where}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class Suppression:
    """One parsed ``# repro: allow(...)`` comment."""

    line: int  # line the comment sits on
    target: int  # line it suppresses (itself, or the next code line)
    codes: tuple[str, ...]
    reason: str | None
    used: bool = False


@dataclass
class ModuleInfo:
    """One parsed source file, shared by every rule."""

    path: Path
    relpath: str  # posix, relative to the scan root's parent
    module: str  # dotted name, e.g. ``repro.engine.cache``
    source: str
    lines: list[str]
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ConfigError(f"cannot parse {path}: {exc}") from exc
        resolved = path.resolve()
        if root is not None:
            try:
                relpath = resolved.relative_to(root.resolve()).as_posix()
            except ValueError:
                relpath = resolved.as_posix()
        else:
            relpath = resolved.as_posix()
        return cls(
            path=path,
            relpath=relpath,
            module=_dotted_module(resolved),
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )


def _dotted_module(path: Path) -> str:
    """``repro.engine.cache`` for files under a ``repro`` package.

    Files outside the package (test fixtures, tmp dirs) fall back to
    their stem, so package-scoped rules treat them as in-scope — which
    is exactly what fixture tests want.
    """
    parts = list(path.parts)
    if "repro" in parts:
        tail = parts[parts.index("repro"):]
        tail[-1] = path.stem
        return ".".join(tail)
    return path.stem


class Rule:
    """Base class for one invariant checker.

    Subclasses set ``code``/``name``/``summary`` and implement
    :meth:`check`. :meth:`applies` scopes a rule to package subtrees;
    modules whose dotted name does not start with ``repro.`` are
    always in scope so fixture files exercise every rule.
    """

    code: str = "RA000"
    name: str = "base"
    summary: str = ""
    #: Dotted-module prefixes the rule skips (the rule's own home).
    exempt_prefixes: tuple[str, ...] = ()

    def applies(self, module: ModuleInfo) -> bool:
        if not module.module.startswith("repro."):
            return True
        return not module.module.startswith(self.exempt_prefixes)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str, symbol: str
    ) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            code=self.code,
            message=message,
            symbol=symbol,
        )


#: code -> rule instance. Populated by :func:`register` at import time
#: of ``repro.analysis.rules``.
REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the suite registry."""
    rule = rule_cls()
    if rule.code in REGISTRY:
        raise ConfigError(f"duplicate rule code {rule.code!r}")
    REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, by code. Imports the bundled rule set."""
    from repro.analysis import rules as _rules  # noqa: F401 - registration

    return [REGISTRY[code] for code in sorted(REGISTRY)]


# -- suppressions ------------------------------------------------------------


def collect_suppressions(module: ModuleInfo) -> list[Suppression]:
    """Parse every ``# repro: allow(...)`` comment in the file.

    A comment-only line suppresses the next non-blank, non-comment
    line; a trailing comment suppresses its own line. Real comment
    tokens only — a docstring *describing* the syntax is not a
    suppression.
    """
    found: list[Suppression] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(module.source).readline)
        )
    except tokenize.TokenError:
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS.search(token.string)
        if match is None:
            continue
        codes = tuple(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        reason = match.group(2)
        index = token.start[0]
        target = index
        if module.lines[index - 1].lstrip().startswith("#"):
            target = _next_code_line(module.lines, index)
        found.append(
            Suppression(line=index, target=target, codes=codes, reason=reason)
        )
    return found


def _next_code_line(lines: list[str], after: int) -> int:
    for index in range(after, len(lines)):
        stripped = lines[index].strip()
        if stripped and not stripped.startswith("#"):
            return index + 1
    return after


def _suppression_findings(
    module: ModuleInfo, suppressions: list[Suppression], known: set[str]
) -> list[Finding]:
    """RA100 hygiene findings: no reason, unknown code, unused allow."""
    findings = []
    for sup in suppressions:
        symbol = f"allow@{','.join(sup.codes) or '?'}"
        if not sup.codes:
            findings.append(Finding(
                module.relpath, sup.line, SUPPRESSION_CODE,
                "suppression lists no rule codes", symbol,
            ))
            continue
        if not sup.reason:
            findings.append(Finding(
                module.relpath, sup.line, SUPPRESSION_CODE,
                "suppression has no reason (write `# repro: "
                "allow(CODE) — why`)", symbol,
            ))
        for code in sup.codes:
            if code not in known and code != SUPPRESSION_CODE:
                findings.append(Finding(
                    module.relpath, sup.line, SUPPRESSION_CODE,
                    f"suppression names unknown rule {code!r}", symbol,
                ))
        if not sup.used and all(c in known for c in sup.codes):
            findings.append(Finding(
                module.relpath, sup.line, SUPPRESSION_CODE,
                "suppression matches no finding "
                f"({', '.join(sup.codes)}) — delete it", symbol,
            ))
    return findings


# -- baseline ----------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: Path) -> dict[str, dict]:
    """fingerprint -> entry. Every entry must carry a reason."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path} has version {data.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    entries = {}
    for entry in data.get("entries", []):
        fingerprint = entry.get("fingerprint")
        if not fingerprint:
            raise ConfigError(f"baseline {path}: entry missing fingerprint")
        if not entry.get("reason"):
            raise ConfigError(
                f"baseline {path}: entry {fingerprint} has no reason — "
                "baselined findings must say why they are accepted"
            )
        entries[fingerprint] = entry
    return entries


def save_baseline(path: Path, findings: Iterable[Finding],
                  reason: str) -> None:
    """Write every finding into a fresh baseline with one shared reason."""
    entries = [
        {
            "fingerprint": f.fingerprint(),
            "code": f.code,
            "path": f.path,
            "symbol": f.symbol,
            "message": f.message,
            "reason": reason,
        }
        for f in sorted(set(findings))
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# -- suite -------------------------------------------------------------------


@dataclass
class SuiteResult:
    """Outcome of one run over a file set."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def as_dict(self) -> dict:
        from repro.analysis import rules as _rules  # noqa: F401

        return {
            "version": BASELINE_VERSION,
            "files": self.files,
            "rules": [
                {"code": r.code, "name": r.name, "summary": r.summary}
                for r in all_rules()
            ],
            "counts": self.counts(),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "baselined": [f.as_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }


def iter_source_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_suite(
    paths: Iterable[Path],
    rules: Iterable[Rule] | None = None,
    baseline: dict[str, dict] | None = None,
    root: Path | None = None,
) -> SuiteResult:
    """Run every rule over every file and reconcile the findings.

    ``root`` anchors the repo-relative paths in output (defaults to the
    common parent handed in); ``baseline`` maps accepted fingerprints
    to their entries.
    """
    rule_list = list(rules) if rules is not None else all_rules()
    known = {rule.code for rule in rule_list} | {SUPPRESSION_CODE}
    baseline = dict(baseline or {})
    result = SuiteResult()
    matched: set[str] = set()

    for path in iter_source_files(paths):
        module = ModuleInfo.parse(path, root=root)
        result.files += 1
        suppressions = collect_suppressions(module)
        raw: list[Finding] = []
        for rule in rule_list:
            if rule.applies(module):
                raw.extend(rule.check(module))
        for finding in sorted(set(raw)):
            sup = _matching_suppression(suppressions, finding)
            if sup is not None:
                sup.used = True
                result.suppressed.append(finding)
            elif finding.fingerprint() in baseline:
                matched.add(finding.fingerprint())
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
        result.findings.extend(
            _suppression_findings(module, suppressions, known)
        )

    result.stale_baseline = [
        entry for fp, entry in sorted(baseline.items()) if fp not in matched
    ]
    result.findings.sort()
    return result


def _matching_suppression(
    suppressions: list[Suppression], finding: Finding
) -> Suppression | None:
    for sup in suppressions:
        if sup.target == finding.line and finding.code in sup.codes:
            return sup
    return None


# -- small AST helpers shared by rules ---------------------------------------


def dotted(node: ast.AST) -> str | None:
    """``self._lock`` / ``_trace.ACTIVE`` as a string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def enclosing_symbols(tree: ast.Module) -> dict[int, str]:
    """Map every node id to its ``Class.method`` symbol string."""
    symbols: dict[int, str] = {}

    def walk(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            name = getattr(child, "name", None)
            if isinstance(
                child,
                (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ) and name:
                inner = f"{scope}.{name}" if scope else name
            else:
                inner = scope
            symbols[id(child)] = inner
            walk(child, inner)

    walk(tree, "")
    return symbols
