"""Project-specific static analysis: the invariant checkers.

The concurrent stack's correctness conventions — lock ordering,
``ACTIVE``-guarded telemetry, shared-memory lifecycle, frozen
execution policies, pool-only parallelism, no deprecated per-knob
kwargs — are enforced here as AST rules over ``src/repro/``, run by
``tools/check_invariants.py`` and the CI ``lint`` job.

Public surface::

    from repro.analysis import all_rules, run_suite, Finding

    result = run_suite([Path("src/repro")])
    assert result.clean, result.findings

Adding a rule: subclass :class:`Rule` in one new module under
``repro/analysis/rules/``, decorate it with :func:`register`, import
it from ``rules/__init__``. See ARCHITECTURE §15.
"""

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    REGISTRY,
    Rule,
    SUPPRESSION_CODE,
    SuiteResult,
    Suppression,
    all_rules,
    collect_suppressions,
    iter_source_files,
    load_baseline,
    register,
    run_suite,
    save_baseline,
)

__all__ = [
    "REGISTRY",
    "iter_source_files",
    "Finding",
    "ModuleInfo",
    "Rule",
    "SUPPRESSION_CODE",
    "SuiteResult",
    "Suppression",
    "all_rules",
    "collect_suppressions",
    "load_baseline",
    "register",
    "run_suite",
    "save_baseline",
]
