"""The bundled rule set. Importing this package registers every rule.

One rule per module, registered via :func:`repro.analysis.register` —
a future PR adds a rule by dropping one file here and importing it
below (the registry, CLI, ``--json`` output, baseline, and docs table
all pick it up from :func:`repro.analysis.all_rules`).
"""

from repro.analysis.rules import (  # noqa: F401 - imported for registration
    bare_thread,
    deprecated_kwarg,
    frozen_policy,
    lock_order,
    shm_lifecycle,
    telemetry_purity,
)

__all__ = [
    "lock_order",
    "telemetry_purity",
    "shm_lifecycle",
    "frozen_policy",
    "deprecated_kwarg",
    "bare_thread",
]
