"""RA104 — ``ExecutionPolicy`` is immutable outside its home module.

The whole point of the PR-5 redesign is that one frozen value carries
the execution knobs through every layer: caches key on it, executors
capture it at construction, and ``evolve()`` is the only sanctioned
way to get a different one. ``object.__setattr__`` (the frozen-
dataclass backdoor ``execution.py`` itself uses in ``__post_init__``)
or a ``setattr`` on a policy anywhere else silently changes behavior
for every holder of the shared value — a cross-session heisenbug.

Flagged, everywhere except ``repro/execution.py``:

* ``object.__setattr__(p, ...)`` / ``setattr(p, ...)`` where ``p`` is
  policy-shaped — named ``policy``/``*_policy``, a ``.policy``
  attribute, or annotated ``ExecutionPolicy``;
* direct field assignment ``p.workers = …`` on a policy-shaped target
  (frozen dataclasses raise at runtime; the lint catches it before a
  test has to).
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleInfo, Rule, dotted, \
    enclosing_symbols, register

def _policy_shaped(node: ast.expr, annotations: dict) -> bool:
    name = dotted(node)
    if name is None:
        return False
    last = name.split(".")[-1]
    if last == "policy" or last.endswith("_policy"):
        return True
    annotation = annotations.get(name)
    return annotation is not None and "ExecutionPolicy" in annotation


@register
class FrozenPolicyRule(Rule):
    code = "RA104"
    name = "frozen-policy"
    summary = (
        "mutation of a (frozen) ExecutionPolicy outside execution.py"
    )
    exempt_prefixes = ("repro.execution", "repro.analysis")

    def check(self, module: ModuleInfo):
        symbols = enclosing_symbols(module.tree)
        for func in ast.walk(module.tree):
            scope = func if isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) else None
            if scope is None:
                continue
            annotations = self._annotations(scope)
            for node in ast.walk(scope):
                yield from self._check_node(
                    module, node, annotations, symbols
                )

    def _annotations(self, func) -> dict[str, str]:
        annotations: dict[str, str] = {}
        for arg in (
            list(func.args.args)
            + list(func.args.kwonlyargs)
            + list(func.args.posonlyargs)
        ):
            if arg.annotation is not None:
                annotations[arg.arg] = ast.unparse(arg.annotation)
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign):
                target = dotted(node.target)
                if target is not None:
                    annotations[target] = ast.unparse(node.annotation)
        return annotations

    def _check_node(self, module, node, annotations, symbols):
        symbol = symbols.get(id(node), "")
        if isinstance(node, ast.Call):
            func_name = dotted(node.func)
            if (
                func_name in ("object.__setattr__", "setattr")
                and node.args
                and _policy_shaped(node.args[0], annotations)
            ):
                yield self.finding(
                    module, node,
                    f"{func_name} on policy value "
                    f"{ast.unparse(node.args[0])!r} — ExecutionPolicy "
                    f"is frozen; use policy.evolve(...) instead",
                    symbol,
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if _policy_shaped(base, annotations):
                    yield self.finding(
                        module, node,
                        f"assignment to "
                        f"{ast.unparse(target)!r} mutates a frozen "
                        f"ExecutionPolicy; use policy.evolve(...)",
                        symbol,
                    )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Attribute
        ):
            if _policy_shaped(node.target.value, annotations):
                yield self.finding(
                    module, node,
                    f"augmented assignment to "
                    f"{ast.unparse(node.target)!r} mutates a frozen "
                    f"ExecutionPolicy",
                    symbol,
                )
