"""RA105 — internal code never calls the pre-PR-5 per-knob kwargs.

``execute_batch(workers=…, shards=…)`` and friends survive only as a
deprecation shim in ``execution.py`` that maps the old knobs onto an
:class:`ExecutionPolicy` and warns. The pytest gate (``pytest.ini``
turns repro-attributed ``DeprecationWarning`` into errors) catches
internal callers *that a test happens to execute*; this rule catches
them at lint time, including paths no test reaches.

Flagged: any call to ``execute_batch`` / ``refresh`` /
``apply_and_refresh`` / ``refresh_many`` / ``replay_log`` passing one
of the legacy knob keywords (``batch`` / ``workers`` / ``shards`` /
``multiplan``) anywhere outside ``repro/execution.py`` (the shim's
home). Pass ``policy=ExecutionPolicy(...)`` instead.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleInfo, Rule, enclosing_symbols, \
    register

_METHODS = {
    "execute_batch", "refresh", "apply_and_refresh", "refresh_many",
    "replay_log",
}
_KNOBS = {"batch", "workers", "shards", "multiplan"}


@register
class DeprecatedKwargRule(Rule):
    code = "RA105"
    name = "deprecated-kwarg"
    summary = (
        "calls to execute_batch/refresh with pre-PR-5 per-knob "
        "kwargs instead of policy="
    )
    exempt_prefixes = ("repro.execution", "repro.analysis")

    def check(self, module: ModuleInfo):
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _METHODS:
                continue
            legacy = sorted(
                kw.arg for kw in node.keywords
                if kw.arg in _KNOBS
            )
            if legacy:
                yield self.finding(
                    module, node,
                    f"{name}() called with deprecated per-knob "
                    f"kwarg(s) {', '.join(legacy)} — pass "
                    f"policy=ExecutionPolicy(...) instead",
                    symbols.get(id(node), ""),
                )
