"""RA103 — shared-memory lifecycle and the plain-data process boundary.

Two contracts from the process-backed execution layer (ARCHITECTURE
§13):

1. **Every segment gets an unlink path.** A class that calls
   ``SharedMemory(create=True)`` must, in the same class, either call
   ``.unlink()`` somewhere or register a ``weakref.finalize`` sweep —
   otherwise a crashed parent leaks ``/dev/shm`` segments until
   reboot. (The CI leak checks catch a *leak that happened*; this
   catches the code shape that makes one possible.)

2. **Only plain data crosses into worker processes.** Tasks submitted
   to a ``ProcessPoolExecutor`` must be module-level functions applied
   to ``ExportSpec`` / ``ShardJob`` / ``ShardPayload`` values (or
   builtins) — never bound methods, lambdas, or live handles (a pool,
   an engine, a segment). A bound method drags ``self`` — the whole
   pool, with its locks and live segments — through pickle into the
   spawn context; it either fails at runtime or, worse, ships a copy
   whose cleanup fights the parent's.

Receivers are recognized from ``ProcessPoolExecutor`` annotations and
constructor calls; argument plainness from parameter annotations,
attribute names (``.spec`` / ``.job`` / ``.payload``), and constants.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleInfo, Rule, dotted, \
    enclosing_symbols, register

#: Types allowed through the process boundary, plus builtin scalars.
_PLAIN_TOKENS = (
    "ExportSpec", "ShardJob", "ShardPayload",
    "str", "int", "float", "bool", "bytes", "tuple", "list", "dict",
)
_PLAIN_ATTRS = {"spec", "job", "payload"}


def _is_shm_create(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in call.keywords
    )


def _has_release_path(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "unlink", "finalize"
            ):
                return True
            if isinstance(func, ast.Name) and func.id == "finalize":
                return True
    return False


def _annotation_mentions_plain(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return any(token in text for token in _PLAIN_TOKENS)


@register
class ShmLifecycleRule(Rule):
    code = "RA103"
    name = "shm-lifecycle"
    summary = (
        "SharedMemory(create=True) without an unlink/finalize path, "
        "or non-plain-data arguments submitted to worker processes"
    )

    def check(self, module: ModuleInfo):
        symbols = enclosing_symbols(module.tree)
        yield from self._check_unlink_paths(module, symbols)
        yield from self._check_submit_boundary(module, symbols)

    # -- contract 1: create implies an unlink path ---------------------------

    def _check_unlink_paths(self, module, symbols):
        scopes = [
            n for n in module.tree.body if isinstance(n, ast.ClassDef)
        ]
        module_level = [
            n for n in module.tree.body
            if not isinstance(n, ast.ClassDef)
        ]
        for scope, label in [(s, s.name) for s in scopes] + [
            (ast.Module(body=module_level, type_ignores=[]), "module"),
        ]:
            creates = [
                n for n in ast.walk(scope)
                if isinstance(n, ast.Call) and _is_shm_create(n)
            ]
            if creates and not _has_release_path(scope):
                for call in creates:
                    yield self.finding(
                        module, call,
                        f"SharedMemory(create=True) in {label} with no "
                        f"unlink()/weakref.finalize path in the same "
                        f"scope — a crash here leaks /dev/shm segments",
                        symbols.get(id(call), ""),
                    )

    # -- contract 2: plain data only across the process boundary ------------

    def _check_submit_boundary(self, module, symbols):
        receivers = self._process_executor_names(module.tree)
        if not receivers:
            return
        module_funcs = {
            n.name for n in module.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for func in ast.walk(module.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            annotations = {
                arg.arg: arg.annotation
                for arg in list(func.args.args)
                + list(func.args.kwonlyargs)
                + list(func.args.posonlyargs)
            }
            local_receivers = set(receivers) | \
                self._local_executor_names(func, receivers, module.tree)
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                ):
                    continue
                receiver = dotted(node.func.value)
                if receiver not in local_receivers:
                    continue
                symbol = symbols.get(id(node), "")
                if node.args:
                    target = node.args[0]
                    if isinstance(target, ast.Lambda):
                        yield self.finding(
                            module, node,
                            "lambda submitted to a process pool — "
                            "closures don't survive spawn pickling; "
                            "use a module-level function",
                            symbol,
                        )
                    elif isinstance(target, ast.Attribute):
                        yield self.finding(
                            module, node,
                            f"bound method "
                            f"{dotted(target) or target.attr!r} "
                            f"submitted to a process pool — it pickles "
                            f"its whole instance into the worker; use "
                            f"a module-level function over plain data",
                            symbol,
                        )
                    elif (
                        isinstance(target, ast.Name)
                        and module_funcs
                        and target.id not in module_funcs
                    ):
                        yield self.finding(
                            module, node,
                            f"{target.id!r} submitted to a process "
                            f"pool is not a module-level function of "
                            f"this module",
                            symbol,
                        )
                for arg in node.args[1:]:
                    if not self._is_plain(arg, annotations):
                        yield self.finding(
                            module, node,
                            f"argument {ast.unparse(arg)!r} crossing "
                            f"the process boundary is not provably "
                            f"plain data (ExportSpec/ShardJob/"
                            f"ShardPayload or builtins)",
                            symbol,
                        )

    def _process_executor_names(self, tree: ast.Module) -> set[str]:
        """Dotted names statically typed/assigned ProcessPoolExecutor."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                target = dotted(node.target)
                if target and _mentions_ppe(node.annotation):
                    names.add(target)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = dotted(node.targets[0])
                if target and _ctor_is_ppe(node.value):
                    names.add(target)
        return names

    def _local_executor_names(self, func, receivers, tree) -> set[str]:
        """Locals bound from PPE attrs or PPE-returning methods."""
        returns_ppe = {
            n.name for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _mentions_ppe(n.returns)
        }
        names: set[str] = set()
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Assign) and len(node.targets) == 1
            ):
                continue
            target = dotted(node.targets[0])
            if target is None:
                continue
            value = node.value
            if dotted(value) in receivers or _ctor_is_ppe(value):
                names.add(target)
            elif isinstance(value, ast.Call):
                callee = value.func
                method = (
                    callee.attr if isinstance(callee, ast.Attribute)
                    else callee.id if isinstance(callee, ast.Name)
                    else None
                )
                if method in returns_ppe:
                    names.add(target)
        return names

    def _is_plain(self, arg: ast.expr, annotations: dict) -> bool:
        if isinstance(arg, ast.Constant):
            return True
        if isinstance(arg, (ast.Tuple, ast.List)):
            return all(
                self._is_plain(e, annotations) for e in arg.elts
            )
        if isinstance(arg, ast.Name):
            return _annotation_mentions_plain(annotations.get(arg.id))
        if isinstance(arg, ast.Attribute):
            return arg.attr in _PLAIN_ATTRS
        return False


def _mentions_ppe(annotation: ast.expr | None) -> bool:
    return (
        annotation is not None
        and "ProcessPoolExecutor" in ast.unparse(annotation)
    )


def _ctor_is_ppe(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name == "ProcessPoolExecutor"
