"""RA102 — telemetry call sites must sit behind an ``ACTIVE`` guard.

Telemetry is off by default and the contract (ARCHITECTURE §12) is
byte-purity: with no tracer installed, the query path executes the
exact pre-telemetry code — one ``ACTIVE`` attribute load and a
``None`` test, nothing else. That only holds if *every* use of a
tracer/metrics handle derived from ``trace.ACTIVE`` /
``metrics.ACTIVE`` is reachable only when the handle was proven
non-None.

The rule runs the :mod:`repro.analysis.guards` flow analysis over
engine/concurrency/sharding/dashboard/serving modules: names assigned
from ``*.ACTIVE`` (including ``self._tracer`` class attributes) and
anything derived from them (``span = tracer.begin(...)``) form a
family; an ``is not None`` check on any family member licenses the
family in that branch (a bound span implies a bound tracer). Uses
outside a licensed region — including direct
``_trace.ACTIVE.span(...)`` chains — are findings.

Sites whose guard lives in a caller (e.g. a span parameter the caller
null-checked) are invisible to the lexical analysis and carry an
inline ``# repro: allow(RA102) — why`` instead, keeping the
cross-function argument written down next to the code.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleInfo, Rule, enclosing_symbols, register
from repro.analysis.guards import GuardAnalysis

#: Packages on the query path where the purity contract applies. The
#: telemetry package itself and the CLIs (which construct their own
#: bundles explicitly) are out of scope.
_SCOPE = (
    "repro.engine.",
    "repro.concurrency.",
    "repro.sharding.",
    "repro.serving.",
    "repro.dashboard.",
    "repro.facade",
)


@register
class TelemetryPurityRule(Rule):
    code = "RA102"
    name = "telemetry-purity"
    summary = (
        "tracer/metrics handles from ACTIVE used outside an "
        "is-not-None guard on the query path"
    )

    def applies(self, module: ModuleInfo) -> bool:
        if not module.module.startswith("repro."):
            return True
        return module.module.startswith(_SCOPE)

    def check(self, module: ModuleInfo):
        symbols = enclosing_symbols(module.tree)
        analysis = GuardAnalysis("ACTIVE")
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                analysis.analyze_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analysis.analyze_function(node)
        seen = set()
        for use in analysis.uses:
            key = (use.node.lineno, use.name)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module, use.node,
                f"use of {use.name!r} (from {use.source}) outside an "
                f"`is not None` guard — the disabled-telemetry path "
                f"must stay byte-identical",
                symbols.get(id(use.node), ""),
            )
