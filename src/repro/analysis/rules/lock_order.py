"""RA101 — lock ordering and no engine work under cache/registry locks.

The concurrency stack's deadlock-freedom argument (ARCHITECTURE §6/§8)
is a lock *hierarchy*: cache and registry locks are leaf-adjacent —
they guard dict/LRU state only and are never held across engine work —
and any method that takes two locks takes them in one global order.
This rule rebuilds that argument from the AST:

1. Per class, find every lock attribute (``self.X = threading.Lock()``
   / ``RLock`` / ``Condition``) and every ``with self.X:`` block.
2. Build the acquisition graph: an edge ``X -> Y`` whenever ``Y`` is
   taken (directly, or one call deep through another method of the
   same class) while ``X`` is held. A cycle is a finding — two call
   paths disagree about the order, which is a deadlock under
   contention.
3. In classes whose name marks them as cache/registry state (``Cache``
   / ``Registry`` / ``Host`` in the name), flag any
   ``*engine*.execute…`` call — again directly or one call deep —
   made while one of the class's locks is held. Engine work under a
   cache lock serializes every other session behind one query and is
   the single-flight protocol's job instead.

The analysis is per class plus module-level functions; cross-class
call chains are out of reach for a lexical pass and covered by the
stress tests instead.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Rule,
    dotted,
    enclosing_symbols,
    register,
)

_LOCK_CTORS = {"Lock", "RLock", "Condition", "Semaphore",
               "BoundedSemaphore"}
_CACHEISH = re.compile(r"Cache|Registry|Host")


def _is_lock_ctor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS
    return isinstance(func, ast.Name) and func.id in _LOCK_CTORS


def _is_engine_execute(call: ast.Call) -> bool:
    """``<...engine>.execute*(...)`` — receiver's last segment names an
    engine (``self.engine``, ``fallback_engine``, bare ``engine``)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if not func.attr.startswith("execute"):
        return False
    receiver = dotted(func.value)
    if receiver is None:
        return False
    return "engine" in receiver.split(".")[-1].lower()


def _self_call(call: ast.Call) -> str | None:
    """Method name for ``self.m(...)``, else None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


@register
class LockOrderRule(Rule):
    code = "RA101"
    name = "lock-order"
    summary = (
        "lock-acquisition cycles, and engine execute calls while a "
        "cache/registry lock is held"
    )

    def check(self, module: ModuleInfo):
        symbols = enclosing_symbols(module.tree)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, symbols)

    def _check_class(self, module, cls, symbols):
        locks = self._lock_attrs(cls)
        if not locks:
            return
        methods = {
            m.name: m
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        acquires = {
            name: self._locks_acquired(m, locks)
            for name, m in methods.items()
        }
        engine_callers = {
            name for name, m in methods.items()
            if any(
                isinstance(n, ast.Call) and _is_engine_execute(n)
                for n in ast.walk(m)
            )
        }
        cacheish = bool(_CACHEISH.search(cls.name))
        edges: dict[tuple[str, str], ast.AST] = {}
        for method in methods.values():
            yield from self._walk(
                module, cls, method, locks, acquires, engine_callers,
                cacheish, edges, symbols,
            )
        yield from self._cycles(module, cls, edges, symbols)

    def _lock_attrs(self, cls) -> set[str]:
        found = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = dotted(node.targets[0])
                if (
                    target
                    and target.startswith("self.")
                    and "." not in target[5:]
                    and _is_lock_ctor(node.value)
                ):
                    found.add(target[5:])
        return found

    def _locks_acquired(self, method, locks) -> set[str]:
        held = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    target = dotted(item.context_expr)
                    if target and target.startswith("self.") and \
                            target[5:] in locks:
                        held.add(target[5:])
        return held

    def _walk(self, module, cls, method, locks, acquires, engine_callers,
              cacheish, edges, symbols):
        """Depth-first over one method, tracking the held-lock stack."""

        def visit(node, held):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                newly = []
                for item in node.items:
                    target = dotted(item.context_expr)
                    if target and target.startswith("self.") and \
                            target[5:] in locks:
                        lock = target[5:]
                        for outer in held:
                            if outer != lock:
                                edges.setdefault(
                                    (outer, lock), item.context_expr
                                )
                        newly.append(lock)
                for child in node.body:
                    yield from visit(child, held + newly)
                return
            if isinstance(node, ast.Call) and held:
                if cacheish and _is_engine_execute(node):
                    yield self.finding(
                        module, node,
                        f"engine execute call while holding "
                        f"{cls.name}.{held[-1]} — cache/registry locks "
                        f"must not be held across engine work",
                        symbols.get(id(node), ""),
                    )
                callee = _self_call(node)
                if callee is not None and callee in acquires:
                    for lock in acquires[callee]:
                        for outer in held:
                            if outer != lock:
                                edges.setdefault(
                                    (outer, lock), node
                                )
                if (
                    cacheish
                    and callee in engine_callers
                    and callee not in acquires
                ):
                    # One call deep: self.m() runs engine work while
                    # our lock is held (m taking its own lock would
                    # make the engine call *its* problem).
                    yield self.finding(
                        module, node,
                        f"call to self.{callee}() runs engine work "
                        f"while holding {cls.name}.{held[-1]}",
                        symbols.get(id(node), ""),
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, held)

        for stmt in method.body:
            yield from visit(stmt, [])

    def _cycles(self, module, cls, edges, symbols):
        graph: dict[str, set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
        reported = set()
        for start in sorted(graph):
            path: list[str] = []

            def dfs(lock):
                if lock in path:
                    cycle = tuple(path[path.index(lock):] + [lock])
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        site = edges.get(
                            (cycle[0], cycle[1]),
                            next(iter(edges.values())),
                        )
                        chain = " -> ".join(
                            f"{cls.name}.{l}" for l in cycle
                        )
                        yield self.finding(
                            module, site,
                            f"lock-order cycle: {chain}",
                            symbols.get(id(site), ""),
                        )
                    return
                path.append(lock)
                for nxt in sorted(graph.get(lock, ())):
                    yield from dfs(nxt)
                path.pop()

            yield from dfs(start)
