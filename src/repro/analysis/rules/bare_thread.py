"""RA106 — no bare threading primitives outside the pool packages.

Every thread in the system is supposed to come from one of three
places: the worker pool (``concurrency/``), the serving tier's
request/sweeper threads (``serving/``), or telemetry's context
plumbing (``telemetry/``). A ``threading.Thread`` spun up anywhere
else escapes the pool's accounting — no deterministic
``repro-worker-{i}`` name, no ``pool.worker_tasks`` gauge, no
contextvars propagation for spans — and a stray ``Lock`` invents a
new synchronization domain the lock-order analysis (RA101) can't see
the conventions for.

Flagged outside ``concurrency/``/``serving/``/``telemetry/``:
construction of ``threading.Thread``/``Timer``/``Lock``/``RLock``/
``Condition``/``Semaphore``/``BoundedSemaphore``/``Barrier`` (via the
module or a ``from threading import …`` name) and of
``ThreadPoolExecutor``/``ProcessPoolExecutor``.

Long-standing engine-internal locks (the SQLite replica registry, the
LRU cache) carry inline ``# repro: allow(RA106) — why`` suppressions:
they guard data structures, not parallelism, and the reasons are part
of the code now.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleInfo, Rule, enclosing_symbols, \
    register

_PRIMITIVES = {
    "Thread", "Timer", "Lock", "RLock", "Condition", "Semaphore",
    "BoundedSemaphore", "Barrier",
}
_EXECUTORS = {"ThreadPoolExecutor", "ProcessPoolExecutor"}


@register
class BareThreadRule(Rule):
    code = "RA106"
    name = "bare-thread"
    summary = (
        "threading primitive or executor created outside "
        "concurrency/, serving/, telemetry/"
    )
    exempt_prefixes = (
        "repro.concurrency", "repro.serving", "repro.telemetry",
    )

    def check(self, module: ModuleInfo):
        imported = self._threading_imports(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name) and base.id == "threading" \
                        and func.attr in _PRIMITIVES:
                    name = f"threading.{func.attr}"
                elif func.attr in _EXECUTORS:
                    name = func.attr
            elif isinstance(func, ast.Name):
                if func.id in imported and (
                    func.id in _PRIMITIVES or func.id in _EXECUTORS
                ):
                    name = func.id
                elif func.id in _EXECUTORS:
                    name = func.id
            if name is not None:
                yield self.finding(
                    module, node,
                    f"{name} created outside concurrency/, serving/, "
                    f"telemetry/ — new parallelism goes through the "
                    f"worker pool",
                    symbols.get(id(node), ""),
                )

    def _threading_imports(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "threading", "concurrent.futures",
            ):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

