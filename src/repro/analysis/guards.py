"""None-guard dataflow shared by guard-sensitive rules.

The telemetry layer's purity contract (ARCHITECTURE §12) is that every
tracer/metrics call site sits behind an ``ACTIVE``-is-bound check so
the disabled path stays byte-identical to the pre-telemetry code. This
module implements the small flow analysis that proves it: it tracks
names *derived from* a watched source (``tracer = _trace.ACTIVE``,
``span = tracer.begin(...)``, ``self._tracer = _trace.ACTIVE``) and
walks each function recording where a ``X is not None`` guard — in an
``if``, a ternary, an ``and`` chain, or an early ``if X is None:
return`` — licenses uses of that name's *family*.

Families, not single names: ``span = tracer.begin(...)`` can only bind
a span when the tracer was bound, so a guard on either licenses both
(``if span is not None: ... tracer.finish(span)`` is sound). Derivation
edges are kept in a union-find; a guard licenses the family root.

The analysis is deliberately lexical — no interprocedural flow. A use
it cannot prove guarded (e.g. a tracer call licensed by a *parameter*
the caller guarantees non-None) is a finding; genuinely-safe sites
carry an inline ``# repro: allow(RA102) — why`` so the invariant stays
visible in the code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import dotted


@dataclass
class Use:
    """One attribute access on a watched name outside any guard."""

    node: ast.AST
    name: str  # dotted name used, e.g. ``tracer`` / ``self._tracer``
    source: str  # the watched source it derives from, e.g. ``ACTIVE``


@dataclass
class _Family:
    parent: dict[str, str] = field(default_factory=dict)
    source: dict[str, str] = field(default_factory=dict)

    def find(self, name: str) -> str:
        root = name
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        return root

    def union(self, child: str, base: str) -> None:
        base_root = self.find(base)
        self.parent[self.find(child)] = base_root
        self.source.setdefault(
            base_root, self.source.get(base_root, "")
        )

    def copy(self) -> "_Family":
        return _Family(dict(self.parent), dict(self.source))


def _terminates(stmts: list[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class GuardAnalysis:
    """Find unguarded uses of names derived from watched sources.

    ``watched(expr)`` decides whether an assignment RHS creates a new
    tracked root (returns a source label, else ``None``). Typical:
    attribute loads ending in ``.ACTIVE``.
    """

    def __init__(self, watch_attr: str = "ACTIVE") -> None:
        self.watch_attr = watch_attr
        self.uses: list[Use] = []

    # -- entry points --------------------------------------------------------

    def analyze_class(self, node: ast.ClassDef) -> None:
        """Track ``self.X`` roots class-wide, then check each method."""
        family = _Family()
        tracked: dict[str, str] = {}
        for method in node.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_self_roots(method, tracked, family)
        for method in node.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(method, dict(tracked), family.copy())

    def analyze_function(self, node: ast.FunctionDef) -> None:
        self._check_function(node, {}, _Family())

    # -- phase 1: class-wide self-attribute roots ---------------------------

    def _collect_self_roots(
        self,
        method: ast.AST,
        tracked: dict[str, str],
        family: _Family,
    ) -> None:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = dotted(node.targets[0])
            if target is None or not target.startswith("self."):
                continue
            label = self._watch_label(node.value)
            if label is not None:
                tracked[target] = label
                family.source[family.find(target)] = label
                continue
            base = self._derivation_base(node.value, tracked)
            if base is not None:
                tracked[target] = tracked[base]
                family.union(target, base)

    # -- phase 2: per-function walk ------------------------------------------

    def _check_function(
        self,
        func: ast.AST,
        tracked: dict[str, str],
        family: _Family,
    ) -> None:
        self._block(list(func.body), tracked, family, set())

    def _block(
        self,
        stmts: list[ast.stmt],
        tracked: dict[str, str],
        family: _Family,
        licensed: frozenset | set,
    ) -> None:
        licensed = set(licensed)
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                pos, neg = self._guard_names(stmt.test)
                self._expr(stmt.test, tracked, family, licensed)
                self._block(
                    stmt.body, dict(tracked), family,
                    licensed | self._roots(pos, tracked, family),
                )
                self._block(
                    stmt.orelse, dict(tracked), family,
                    licensed | self._roots(neg, tracked, family),
                )
                # ``if X is None: return`` licenses X for the rest of
                # the block.
                if not stmt.orelse and neg and _terminates(stmt.body):
                    licensed |= self._roots(neg, tracked, family)
                continue
            if isinstance(stmt, ast.While):
                pos, _ = self._guard_names(stmt.test)
                self._expr(stmt.test, tracked, family, licensed)
                self._block(
                    stmt.body, dict(tracked), family,
                    licensed | self._roots(pos, tracked, family),
                )
                self._block(stmt.orelse, dict(tracked), family, licensed)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._expr(stmt.iter, tracked, family, licensed)
                self._block(stmt.body, dict(tracked), family, licensed)
                self._block(stmt.orelse, dict(tracked), family, licensed)
                continue
            if isinstance(stmt, ast.Try):
                self._block(stmt.body, dict(tracked), family, licensed)
                for handler in stmt.handlers:
                    self._block(
                        handler.body, dict(tracked), family, licensed
                    )
                self._block(stmt.orelse, dict(tracked), family, licensed)
                self._block(stmt.finalbody, dict(tracked), family, licensed)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr(
                        item.context_expr, tracked, family, licensed
                    )
                    # ``with tracer.span(...) as span`` derives span.
                    if item.optional_vars is not None:
                        target = dotted(item.optional_vars)
                        base = self._derivation_base(
                            item.context_expr, tracked
                        )
                        if target and base:
                            tracked[target] = tracked[base]
                            family.union(target, base)
                self._block(stmt.body, tracked, family, licensed)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested function: fresh scope, class roots still apply.
                self._check_function(
                    stmt,
                    {k: v for k, v in tracked.items()
                     if k.startswith("self.")},
                    family.copy(),
                )
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                self._assign(
                    stmt.targets[0], stmt.value, tracked, family, licensed
                )
                continue
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign(
                    stmt.target, stmt.value, tracked, family, licensed
                )
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, tracked, family, licensed)
                elif isinstance(child, ast.stmt):
                    self._block([child], tracked, family, licensed)

    def _assign(
        self,
        target_node: ast.expr,
        value: ast.expr,
        tracked: dict[str, str],
        family: _Family,
        licensed: set,
    ) -> None:
        self._expr(value, tracked, family, licensed)
        target = dotted(target_node)
        if target is None:
            return
        label = self._watch_label(value)
        if label is not None:
            tracked[target] = label
            family.source[family.find(target)] = label
            return
        base = self._derivation_base(value, tracked)
        if base is not None:
            tracked[target] = tracked[base]
            family.union(target, base)
        elif target in tracked and not target.startswith("self."):
            # Rebound to something unrelated: stop tracking the local.
            del tracked[target]

    # -- expression walk: flag unguarded attribute access --------------------

    def _expr(
        self,
        node: ast.expr,
        tracked: dict[str, str],
        family: _Family,
        licensed: set,
    ) -> None:
        if isinstance(node, ast.IfExp):
            pos, neg = self._guard_names(node.test)
            self._expr(node.test, tracked, family, licensed)
            self._expr(
                node.body, tracked, family,
                licensed | self._roots(pos, tracked, family),
            )
            self._expr(
                node.orelse, tracked, family,
                licensed | self._roots(neg, tracked, family),
            )
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            # ``X is not None and X.y`` — later operands see earlier
            # guards.
            acc = set(licensed)
            for operand in node.values:
                self._expr(operand, tracked, family, acc)
                pos, _ = self._guard_names(operand)
                acc |= self._roots(pos, tracked, family)
            return
        if isinstance(node, ast.Attribute):
            name = dotted(node.value)
            if name is not None and name in tracked:
                if family.find(name) not in licensed:
                    self.uses.append(Use(node, name, tracked[name]))
                return  # one report per chain; don't descend
            self._expr(node.value, tracked, family, licensed)
            return
        # Direct ``_trace.ACTIVE.span(...)`` without binding first:
        # always unguardable, flag via watch label on the value chain.
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                label = self._watch_label(func.value)
                if label is not None:
                    self.uses.append(
                        Use(node, dotted(func.value) or label, label)
                    )
            self._expr(node.func, tracked, family, licensed)
            for arg in node.args:
                self._expr(arg, tracked, family, licensed)
            for kw in node.keywords:
                self._expr(kw.value, tracked, family, licensed)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, tracked, family, licensed)

    # -- helpers -------------------------------------------------------------

    def _watch_label(self, node: ast.expr) -> str | None:
        """Is this expression a watched source (``*.ACTIVE``)?"""
        if isinstance(node, ast.Attribute) and node.attr == self.watch_attr:
            return dotted(node) or self.watch_attr
        if isinstance(node, ast.Name) and node.id == self.watch_attr:
            return node.id
        return None

    def _derivation_base(
        self, node: ast.expr, tracked: dict[str, str]
    ) -> str | None:
        """Name of the tracked base when ``node`` is ``base.m(...)``."""
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            base = dotted(node.func.value)
            if base is not None and base in tracked:
                return base
        return None

    def _guard_names(
        self, test: ast.expr
    ) -> tuple[set[str], set[str]]:
        """Names proven non-None when ``test`` is (true, false)."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            name = dotted(test.left)
            is_none = (
                isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            )
            if name is not None and is_none:
                if isinstance(test.ops[0], ast.IsNot):
                    return {name}, set()
                if isinstance(test.ops[0], ast.Is):
                    return set(), {name}
            return set(), set()
        if isinstance(test, ast.Name):
            return {test.id}, set()
        name = dotted(test)
        if name is not None:
            return {name}, set()
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            pos, neg = self._guard_names(test.operand)
            return neg, pos
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                pos: set[str] = set()
                for operand in test.values:
                    p, _ = self._guard_names(operand)
                    pos |= p
                return pos, set()
            # or: false => every operand false => all negs hold
            neg = set()
            for operand in test.values:
                _, n = self._guard_names(operand)
                neg |= n
            return set(), neg
        return set(), set()

    def _roots(
        self,
        names: set[str],
        tracked: dict[str, str],
        family: _Family,
    ) -> set[str]:
        return {
            family.find(name) for name in names if name in tracked
        }
