"""Sample-and-scale approximate execution with error estimates.

Executes a query against a uniform sample and scales extensive
aggregates (``COUNT``, ``SUM``) by the inverse sampling fraction — the
Horvitz–Thompson estimator. ``AVG`` passes through unscaled (it is a
ratio of two scaled quantities, so the factors cancel); ``MIN``/``MAX``
pass through but are flagged as unreliable, since a uniform sample has
no information about unseen extremes.

Optional bootstrap standard errors: the sample is resampled with
replacement B times and each replicate re-executed; the per-cell
standard deviation across replicates estimates the sampling error. This
costs B extra query executions over the (small) sample, which is the
classic accuracy/latency trade approximate visualization makes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.approx.sampler import bernoulli_sample, resample_with_replacement
from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.sql.ast import Expression, FuncCall, Query, contains_aggregate

#: Aggregates scaled by 1/fraction.
_EXTENSIVE = frozenset({"COUNT", "SUM"})

#: Aggregates reported as-is but flagged unreliable under sampling.
_UNRELIABLE = frozenset({"MIN", "MAX"})


@dataclass
class ApproximateResult:
    """An estimated result set plus sampling metadata.

    ``estimate`` has the same columns as the exact answer would;
    extensive aggregate cells are scaled. ``stderr`` (when bootstrap was
    requested) is parallel to ``estimate.rows`` with a standard error per
    scaled numeric cell and ``None`` elsewhere.
    """

    estimate: ResultSet
    sampling_fraction: float
    sample_rows: int
    scaled_columns: list[str]
    unreliable_columns: list[str]
    stderr: list[tuple[float | None, ...]] = field(default_factory=list)

    def cell_interval(
        self, row: int, column: str, z: float = 1.96
    ) -> tuple[float, float] | None:
        """Normal-approximation confidence interval for one cell."""
        if not self.stderr:
            return None
        column_index = self.estimate.columns.index(column)
        error = self.stderr[row][column_index]
        if error is None:
            return None
        value = self.estimate.rows[row][column_index]
        if not isinstance(value, (int, float)):
            return None
        return (value - z * error, value + z * error)


def approximate_execute(
    engine: Engine,
    table: Table,
    query: Query,
    fraction: float,
    seed: int = 0,
    bootstrap: int = 0,
) -> ApproximateResult:
    """Estimate a query's answer from a Bernoulli sample of ``table``.

    The engine is loaded with the sample (replacing any same-named
    table), the query runs as-is, and extensive aggregates are scaled.
    With ``bootstrap > 0``, that many resample replicates are executed
    to attach per-cell standard errors.
    """
    if query.joins:
        raise ConfigError(
            "approximate execution samples the denormalized table; "
            "reassemble joins first"
        )
    if query.from_table.name != table.name:
        raise ConfigError(
            f"query reads {query.from_table.name!r}, sample is over "
            f"{table.name!r}"
        )
    sample = bernoulli_sample(table, fraction, seed)
    scale = 1.0 / fraction
    estimate = _scaled_execution(engine, sample, query, scale)
    scaled, unreliable = _classify_columns(query)

    stderr: list[tuple[float | None, ...]] = []
    if bootstrap > 0:
        stderr = _bootstrap_errors(
            engine, sample, query, scale, estimate, bootstrap, seed
        )
    return ApproximateResult(
        estimate=estimate,
        sampling_fraction=fraction,
        sample_rows=sample.num_rows,
        scaled_columns=scaled,
        unreliable_columns=unreliable,
        stderr=stderr,
    )


def relative_error(exact: ResultSet, estimate: ResultSet) -> float:
    """Mean relative error of numeric cells, matching rows by group key.

    Rows are aligned on their non-numeric (key) cells; unmatched groups
    count as 100% error on each numeric cell, penalizing estimates that
    miss or invent groups.
    """
    exact_map = _keyed_numeric_cells(exact)
    estimate_map = _keyed_numeric_cells(estimate)
    errors: list[float] = []
    for key, exact_cells in exact_map.items():
        estimated_cells = estimate_map.get(key)
        if estimated_cells is None:
            errors.extend(1.0 for _ in exact_cells)
            continue
        for truth, guess in zip(exact_cells, estimated_cells):
            if truth == 0:
                errors.append(0.0 if guess == 0 else 1.0)
            else:
                errors.append(abs(guess - truth) / abs(truth))
    for key in estimate_map:
        if key not in exact_map:
            errors.extend(1.0 for _ in estimate_map[key])
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _scaled_execution(
    engine: Engine, sample: Table, query: Query, scale: float
) -> ResultSet:
    engine.load_table(sample)
    raw = engine.execute(query)
    scale_flags = _scale_flags(query, raw.columns)
    rows = [
        tuple(
            _scale_cell(value, scale) if flag else value
            for value, flag in zip(row, scale_flags)
        )
        for row in raw.rows
    ]
    return ResultSet(raw.columns, rows)


def _scale_flags(query: Query, columns: list[str]) -> list[bool]:
    """Which output columns hold extensive aggregates to scale."""
    flags = []
    for item in query.select:
        flags.append(_is_extensive(item.expr))
    # Defensive: engines may append columns we did not anticipate.
    while len(flags) < len(columns):
        flags.append(False)
    return flags


def _is_extensive(expr: Expression) -> bool:
    """True for a bare COUNT/SUM aggregate (optionally distinct=False).

    Compound expressions over aggregates (e.g. ``SUM(a) / COUNT(*)``)
    are intentionally not scaled: ratios of extensive quantities are
    already unbiased, and anything more exotic needs user judgement.
    """
    return (
        isinstance(expr, FuncCall)
        and expr.name in _EXTENSIVE
        and not expr.distinct
    )


def _classify_columns(query: Query) -> tuple[list[str], list[str]]:
    scaled: list[str] = []
    unreliable: list[str] = []
    for position, item in enumerate(query.select):
        name = item.output_name(position)
        if _is_extensive(item.expr):
            scaled.append(name)
        elif isinstance(item.expr, FuncCall) and item.expr.name in _UNRELIABLE:
            unreliable.append(name)
        elif isinstance(item.expr, FuncCall) and item.expr.distinct:
            unreliable.append(name)  # COUNT(DISTINCT) under-counts in samples
        elif not isinstance(item.expr, FuncCall) and contains_aggregate(
            item.expr
        ):
            unreliable.append(name)  # compound aggregate expression
    return scaled, unreliable


def _scale_cell(value: object, scale: float) -> object:
    if value is None or not isinstance(value, (int, float)):
        return value
    scaled = value * scale
    if isinstance(value, int) and float(scaled).is_integer():
        return int(scaled)
    return scaled


def _bootstrap_errors(
    engine: Engine,
    sample: Table,
    query: Query,
    scale: float,
    estimate: ResultSet,
    replicates: int,
    seed: int,
) -> list[tuple[float | None, ...]]:
    """Per-cell standard errors from bootstrap replicates of the sample."""
    key_positions, numeric_positions = _split_positions(estimate)
    accumulator: dict[tuple[object, ...], list[list[float]]] = {}
    for replicate in range(replicates):
        resampled = resample_with_replacement(sample, seed + replicate + 1)
        replicate_result = _scaled_execution(engine, resampled, query, scale)
        for row in replicate_result.rows:
            key = tuple(row[i] for i in key_positions)
            cells = accumulator.setdefault(
                key, [[] for _ in numeric_positions]
            )
            for slot, position in enumerate(numeric_positions):
                value = row[position]
                if isinstance(value, (int, float)):
                    cells[slot].append(float(value))
    # Restore the engine to the un-resampled sample for callers that
    # keep using it.
    engine.load_table(sample)

    errors: list[tuple[float | None, ...]] = []
    for row in estimate.rows:
        key = tuple(row[i] for i in key_positions)
        samples = accumulator.get(key)
        row_errors: list[float | None] = [None] * len(estimate.columns)
        if samples is not None:
            for slot, position in enumerate(numeric_positions):
                observed = samples[slot]
                if len(observed) >= 2:
                    row_errors[position] = _stddev(observed)
        errors.append(tuple(row_errors))
    return errors


def _split_positions(result: ResultSet) -> tuple[list[int], list[int]]:
    """Column positions split into (group keys, numeric measures)."""
    numeric: list[int] = []
    keys: list[int] = []
    for position in range(len(result.columns)):
        values = [row[position] for row in result.rows]
        if values and all(
            isinstance(v, (int, float)) or v is None for v in values
        ):
            numeric.append(position)
        else:
            keys.append(position)
    if not keys and len(result.columns) > 1:
        # All-numeric outputs: treat the first column as the key (the
        # common "group by a numeric column" shape).
        keys = [numeric.pop(0)]
    return keys, numeric


def _keyed_numeric_cells(
    result: ResultSet,
) -> dict[tuple[object, ...], list[float]]:
    keys, numeric = _split_positions(result)
    mapping: dict[tuple[object, ...], list[float]] = {}
    for row in result.rows:
        key = tuple(row[i] for i in keys)
        mapping[key] = [
            float(row[i]) if isinstance(row[i], (int, float)) else 0.0
            for i in numeric
        ]
    return mapping


def _stddev(values: list[float]) -> float:
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance)
