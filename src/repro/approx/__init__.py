"""Approximate query processing for approximate visualization.

The paper notes that SIMBA, Crossfilter, and IDEBench all "provide
support for approximate visualization" (§5): a dashboard that accepts
approximate answers can keep its interaction latency under the
responsiveness thresholds the response-rate metric measures, at the cost
of estimation error. This package supplies that capability for the
bundled engines:

- :mod:`repro.approx.sampler` — seeded uniform row sampling;
- :mod:`repro.approx.estimate` — one-shot sample-and-scale execution
  with optional bootstrap standard errors;
- :mod:`repro.approx.progressive` — online-aggregation-style refinement
  that streams increasingly accurate estimates until they stabilize.

Estimator contract: ``COUNT``/``SUM`` aggregates are scaled by the
inverse sampling fraction (Horvitz–Thompson), ``AVG`` is used as-is
(ratio estimator), and ``MIN``/``MAX`` are reported unscaled but flagged
— extremes are not recoverable from a uniform sample.
"""

from repro.approx.estimate import (
    ApproximateResult,
    approximate_execute,
    relative_error,
)
from repro.approx.progressive import ProgressiveUpdate, progressive_execute
from repro.approx.sampler import bernoulli_sample, sample_prefix, uniform_sample

__all__ = [
    "ApproximateResult",
    "ProgressiveUpdate",
    "approximate_execute",
    "bernoulli_sample",
    "progressive_execute",
    "relative_error",
    "sample_prefix",
    "uniform_sample",
]
