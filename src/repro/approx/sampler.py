"""Seeded uniform sampling over in-memory tables.

All samplers return new :class:`~repro.engine.table.Table` instances
sharing the source's schema, so a sample loads into any engine exactly
like the full table. Sampling is deterministic per seed — a requirement
for reproducible benchmark runs.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table
from repro.errors import ConfigError


def bernoulli_sample(table: Table, fraction: float, seed: int = 0) -> Table:
    """Keep each row independently with probability ``fraction``.

    The realized sample size is binomial, which is what a streaming
    Bernoulli sampler over a scan would produce. Use
    :func:`uniform_sample` when an exact size is needed.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError("sampling fraction must be in (0, 1]")
    if fraction == 1.0:
        return _take(table, np.arange(table.num_rows))
    rng = np.random.default_rng(seed)
    mask = rng.random(table.num_rows) < fraction
    return _take(table, np.flatnonzero(mask))


def uniform_sample(table: Table, size: int, seed: int = 0) -> Table:
    """Exactly ``size`` rows drawn uniformly without replacement."""
    if size <= 0:
        raise ConfigError("sample size must be positive")
    if size >= table.num_rows:
        return _take(table, np.arange(table.num_rows))
    rng = np.random.default_rng(seed)
    indices = rng.choice(table.num_rows, size=size, replace=False)
    return _take(table, np.sort(indices))


def sample_prefix(table: Table, fraction: float, seed: int = 0) -> Table:
    """The first ``fraction`` of a seeded random permutation of the rows.

    Prefixes are *nested*: the 10% prefix is contained in the 20% prefix
    for the same seed. Progressive execution relies on this so each
    refinement step strictly extends the evidence of the previous one,
    the defining property of online aggregation.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError("sampling fraction must be in (0, 1]")
    permutation = shuffled_indices(table, seed)
    size = max(1, int(round(table.num_rows * fraction)))
    return _take(table, np.sort(permutation[:size]))


def shuffled_indices(table: Table, seed: int = 0) -> np.ndarray:
    """A seeded random permutation of the table's row positions."""
    rng = np.random.default_rng(seed)
    return rng.permutation(table.num_rows)


def resample_with_replacement(table: Table, seed: int = 0) -> Table:
    """A bootstrap replicate: ``n`` rows drawn with replacement."""
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, table.num_rows, size=table.num_rows)
    return _take(table, indices)


def _take(table: Table, indices: np.ndarray) -> Table:
    columns = {
        name: [table.column(name)[i] for i in indices]
        for name in table.schema.names
    }
    return Table(table.name, table.schema, columns)
