"""Online-aggregation-style progressive query refinement.

Streams a sequence of increasingly accurate estimates for one query:
step *k* executes over the first ``fractions[k]`` of a seeded random
permutation of the table (nested prefixes, so evidence only grows) and
scales extensive aggregates. Refinement stops early once consecutive
estimates agree to within ``epsilon`` relative change — the "I've seen
enough" stopping rule progressive visualization systems apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.approx.estimate import relative_error
from repro.approx.sampler import sample_prefix
from repro.engine.interface import Engine, ResultSet
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.sql.ast import FuncCall, Query

#: Default refinement schedule (fractions of the full table).
DEFAULT_FRACTIONS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)

_EXTENSIVE = frozenset({"COUNT", "SUM"})


@dataclass
class ProgressiveUpdate:
    """One refinement step of a progressive execution."""

    step: int
    fraction: float
    rows_read: int
    estimate: ResultSet
    duration_ms: float
    #: Mean relative change vs. the previous step's estimate
    #: (``None`` on the first step).
    change: float | None
    converged: bool


def progressive_execute(
    engine: Engine,
    table: Table,
    query: Query,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    seed: int = 0,
    epsilon: float = 0.02,
) -> Iterator[ProgressiveUpdate]:
    """Yield successively refined estimates of ``query`` over ``table``.

    Stops after the first update whose estimate changed less than
    ``epsilon`` (mean relative change) from the previous one, or after
    the final fraction. The last yielded update has ``converged=True``
    unless the schedule was exhausted while still moving.
    """
    if query.joins:
        raise ConfigError(
            "progressive execution samples the denormalized table; "
            "reassemble joins first"
        )
    if not fractions:
        raise ConfigError("progressive execution needs at least one fraction")
    ordered = sorted(set(fractions))
    if ordered[0] <= 0.0 or ordered[-1] > 1.0:
        raise ConfigError("fractions must lie in (0, 1]")

    previous: ResultSet | None = None
    for step, fraction in enumerate(ordered):
        prefix = sample_prefix(table, fraction, seed)
        engine.load_table(prefix)
        timed = engine.execute_timed(query)
        estimate = _scale(timed.result, query, fraction)
        change = (
            relative_error(estimate, previous)
            if previous is not None
            else None
        )
        converged = change is not None and change <= epsilon
        yield ProgressiveUpdate(
            step=step,
            fraction=fraction,
            rows_read=prefix.num_rows,
            estimate=estimate,
            duration_ms=timed.duration_ms,
            change=change,
            converged=converged,
        )
        if converged:
            return
        previous = estimate


def _scale(result: ResultSet, query: Query, fraction: float) -> ResultSet:
    if fraction >= 1.0:
        return result
    scale = 1.0 / fraction
    flags = [
        isinstance(item.expr, FuncCall)
        and item.expr.name in _EXTENSIVE
        and not item.expr.distinct
        for item in query.select
    ]
    while len(flags) < len(result.columns):
        flags.append(False)
    rows = [
        tuple(
            value * scale
            if flag and isinstance(value, (int, float)) and value is not None
            else value
            for value, flag in zip(row, flags)
        )
        for row in result.rows
    ]
    return ResultSet(result.columns, rows)
