"""Exception hierarchy for the SIMBA benchmark reproduction.

Every subsystem raises a subclass of :class:`SimbaError` so that callers can
catch benchmark-specific failures without swallowing programming errors.
"""

from __future__ import annotations


class SimbaError(Exception):
    """Base class for all errors raised by this package."""


class SqlError(SimbaError):
    """Base class for SQL-layer errors."""


class LexError(SqlError):
    """Raised when the SQL lexer encounters an invalid character sequence.

    Attributes
    ----------
    position:
        Zero-based character offset in the input where the error occurred.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised when the SQL parser cannot build an AST from a token stream."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SchemaError(SimbaError):
    """Raised for invalid schema definitions or unknown columns/tables."""


class ExecutionError(SimbaError):
    """Raised when a query cannot be executed by an engine."""


class TypeMismatchError(ExecutionError):
    """Raised when an expression is applied to values of the wrong type."""


class SpecificationError(SimbaError):
    """Raised for invalid dashboard specifications."""


class InteractionError(SimbaError):
    """Raised when an interaction cannot be applied to a dashboard state."""


class GoalError(SimbaError):
    """Raised for malformed goal algebra expressions or goal sets."""


class SimulationError(SimbaError):
    """Raised when a simulation cannot make progress."""


class EquivalenceError(SimbaError):
    """Raised when equivalence testing is given unsupported queries."""


class ConfigError(SimbaError):
    """Raised for invalid benchmark harness configurations."""


class ServingError(SimbaError):
    """Base class for serving-tier errors (:mod:`repro.serving`)."""


class UnknownSessionError(ServingError):
    """Raised when a request names a session that does not exist.

    Covers both never-created ids and sessions the TTL sweep already
    expired — the serving protocol treats them identically (HTTP 404),
    so clients re-create rather than distinguishing the two.
    """


class AdmissionError(ServingError):
    """Raised when admission control rejects a request (backpressure).

    ``retry_after`` is the server's load-shedding hint in seconds; the
    HTTP layer maps it onto a 429 response's ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after
