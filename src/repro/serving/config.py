"""Serving-tier configuration: one frozen value, validated once.

Mirrors the :class:`~repro.execution.ExecutionPolicy` design from PR 5:
every serving knob lives on one frozen dataclass validated at
construction, so an invalid deployment (a zero-capacity cache, a
negative TTL) fails loudly at ``ServingApp(...)`` time instead of ten
requests in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServingConfig:
    """How the dashboard server admits, executes, and expires work.

    - ``session_ttl`` — seconds of idleness after which the TTL sweep
      expires a session (releasing its engine-host reference).
    - ``sweep_interval`` — how often the background sweeper runs; the
      registry also sweeps opportunistically on session creation, so a
      server under load expires sessions even without the thread.
    - ``max_in_flight`` — refreshes executing concurrently across the
      whole server; the hard compute bound on top of ``refresh_many``.
    - ``max_queue_depth`` — requests allowed to *wait* for an in-flight
      slot; one more is rejected with ``Retry-After`` instead of
      queueing unboundedly (tail latency dies in invisible queues).
    - ``queue_timeout`` — seconds a queued request waits before it too
      is rejected; bounds worst-case latency under a stuck refresh.
    - ``retry_after`` — the load-shedding hint (seconds) rejected
      requests carry (HTTP 429 ``Retry-After``).
    - ``max_sessions_per_tenant`` — per-tenant session-creation cap
      (0 = unlimited); a runaway tenant cannot evict co-tenants by
      exhausting the registry.
    - ``cache_capacity`` — scan groups retained per engine host in the
      cross-session result cache (the
      :class:`~repro.engine.cache.ScanGroupCache` capacity).
    """

    session_ttl: float = 300.0
    sweep_interval: float = 5.0
    max_in_flight: int = 8
    max_queue_depth: int = 64
    queue_timeout: float = 30.0
    retry_after: float = 1.0
    max_sessions_per_tenant: int = 0
    cache_capacity: int = 128

    def __post_init__(self) -> None:
        if self.session_ttl <= 0:
            raise ConfigError("session_ttl must be positive")
        if self.sweep_interval <= 0:
            raise ConfigError("sweep_interval must be positive")
        if self.max_in_flight < 1:
            raise ConfigError("max_in_flight must be >= 1")
        if self.max_queue_depth < 0:
            raise ConfigError("max_queue_depth must be >= 0")
        if self.queue_timeout <= 0:
            raise ConfigError("queue_timeout must be positive")
        if self.retry_after <= 0:
            raise ConfigError("retry_after must be positive")
        if self.max_sessions_per_tenant < 0:
            raise ConfigError("max_sessions_per_tenant must be >= 0")
        if self.cache_capacity < 1:
            raise ConfigError("cache_capacity must be >= 1")

    def evolve(self, **changes) -> "ServingConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


__all__ = ["ServingConfig"]
