"""Simulated dashboard users with think-time, built on IDEBench.

The load generator turns the repo's *workload* machinery into
*traffic*: each simulated user is a thread that creates a session,
keeps a shadow :class:`~repro.dashboard.state.DashboardState` in sync
with the server's, and draws operations from the IDEBench mix
(:class:`~repro.idebench.simulator.IDEBenchConfig` §5.1 probabilities)
with concrete interactions chosen by the
:class:`~repro.simulation.markov.MarkovModel`:

- ``p_create_viz`` → a full dashboard refresh (a view being (re)opened
  renders every visualization — the closest analog on a fixed
  dashboard);
- ``p_link`` → session churn: close the session, create a fresh one,
  initial render (this is what makes *sessions/sec* a real number);
- ``p_remove_filter`` → a clear interaction when one is active;
- the remainder → a Markov-drawn data manipulation.

Between operations users sleep an exponentially distributed think-time
(seeded per user, so runs are reproducible op-for-op). Users degrade
the way real clients should: a 429 honors ``Retry-After``; a 404
(expired session) re-creates and replays from the default state.

:class:`InProcessClient` drives a :class:`~repro.serving.app.ServingApp`
directly (transport excluded — the honest framing for single-core
latency numbers); :class:`~repro.serving.server.ServingClient` drives
the same interface over HTTP for the soak.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.dashboard.spec import DashboardSpec
from repro.dashboard.state import DashboardState, InteractionKind
from repro.engine.table import Table
from repro.errors import AdmissionError, ServingError, UnknownSessionError
from repro.idebench.simulator import IDEBenchConfig
from repro.serving.app import ServingApp
from repro.serving.protocol import encode_interaction
from repro.serving.server import ServerReply
from repro.simulation.markov import MarkovModel
from repro.telemetry.metrics import _percentile

#: Cap on how long a rejected user backs off, so a saturated run still
#: makes forward progress within the benchmark's wall-clock budget.
MAX_BACKOFF_S = 0.5

_CLEAR_KINDS = (InteractionKind.WIDGET_CLEAR, InteractionKind.VIZ_CLEAR)


class InProcessClient:
    """The :class:`~repro.serving.server.ServingClient` interface, minus HTTP."""

    def __init__(self, app: ServingApp) -> None:
        self.app = app

    def create_session(
        self, tenant: str, dashboard: str, engine=None, policy=None
    ) -> dict:
        return self.app.create_session(tenant, dashboard, engine, policy)

    def describe_session(self, session_id: str) -> dict:
        return self.app.describe_session(session_id)

    def close_session(self, session_id: str) -> dict:
        return self.app.close_session(session_id)

    def refresh(self, session_id: str, viz_ids=None) -> dict:
        return self.app.refresh(session_id, viz_ids)

    def interact(self, session_id: str, interaction) -> tuple:
        return self.app.interact(session_id, interaction)

    def stats(self) -> dict:
        return self.app.stats()


@dataclass(frozen=True)
class OpRecord:
    """One operation as one user experienced it."""

    user: int
    tenant: str
    kind: str  # refresh | interact | churn | recreate
    latency_ms: float
    status: str  # ok | rejected | recreated | error


@dataclass
class LoadReport:
    """What a load run produced, with honest percentiles."""

    users: int
    wall_s: float
    records: list[OpRecord] = field(default_factory=list)
    sessions_started: int = 0
    errors: list[str] = field(default_factory=list)

    def _latencies(self) -> list[float]:
        return sorted(
            r.latency_ms for r in self.records if r.status == "ok"
        )

    @property
    def requests(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if r.status == "rejected")

    @property
    def recreated(self) -> int:
        return sum(1 for r in self.records if r.status == "recreated")

    def percentile(self, q: float) -> float:
        return _percentile(self._latencies(), q)

    @property
    def sessions_per_sec(self) -> float:
        return self.sessions_started / self.wall_s if self.wall_s else 0.0

    @property
    def requests_per_sec(self) -> float:
        return self.completed / self.wall_s if self.wall_s else 0.0

    def summary(self) -> dict:
        """The JSON-safe block ``bench_serving`` embeds verbatim."""
        latencies = self._latencies()
        return {
            "users": self.users,
            "wall_s": round(self.wall_s, 3),
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "recreated": self.recreated,
            "errors": len(self.errors),
            "sessions_started": self.sessions_started,
            "sessions_per_sec": round(self.sessions_per_sec, 3),
            "requests_per_sec": round(self.requests_per_sec, 3),
            "latency_ms": {
                "p50": round(_percentile(latencies, 0.50), 3),
                "p95": round(_percentile(latencies, 0.95), 3),
                "p99": round(_percentile(latencies, 0.99), 3),
                "max": round(latencies[-1], 3) if latencies else 0.0,
            },
        }


class SimulatedUser:
    """One think-type-wait loop against a serving client."""

    def __init__(
        self,
        index: int,
        client,
        spec: DashboardSpec,
        table: Table,
        report: LoadReport,
        report_lock: threading.Lock,
        tenant: str,
        operations: int,
        think_s: float,
        seed: int,
        engine: str | None = None,
        policy=None,
        config: IDEBenchConfig | None = None,
    ) -> None:
        self.index = index
        self.client = client
        self.spec = spec
        self.table = table
        self.report = report
        self.report_lock = report_lock
        self.tenant = tenant
        self.operations = operations
        self.think_s = think_s
        self.engine = engine
        self.policy = policy
        self.config = config or IDEBenchConfig(seed=seed)
        self.rng = random.Random(f"serving:loadgen:{seed}:{index}")
        self.markov = MarkovModel("balanced", random.Random(seed * 7919 + index))
        self.session_id: str | None = None
        self.shadow: DashboardState | None = None

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, kind: str, latency_ms: float, status: str) -> None:
        with self.report_lock:
            self.report.records.append(
                OpRecord(self.index, self.tenant, kind, latency_ms, status)
            )
            if status == "error":
                pass  # message recorded separately by the caller

    def _error(self, message: str) -> None:
        with self.report_lock:
            self.report.errors.append(f"user {self.index}: {message}")

    def _started_session(self) -> None:
        with self.report_lock:
            self.report.sessions_started += 1

    # -- session lifecycle ---------------------------------------------------

    def _open(self) -> None:
        descriptor = self.client.create_session(
            self.tenant, self.spec.name, self.engine, self.policy
        )
        self.session_id = descriptor["session_id"]
        self.shadow = DashboardState(self.spec, self.table)
        self.markov.reset()
        self._started_session()

    def _think(self) -> None:
        if self.think_s > 0:
            time.sleep(
                min(self.rng.expovariate(1.0 / self.think_s), 4 * self.think_s)
            )

    # -- the operation mix ---------------------------------------------------

    def _pick(self):
        """(kind, thunk) for the next operation, IDEBench-distributed."""
        config = self.config
        draw = self.rng.random()
        if draw < config.p_create_viz:
            return "refresh", lambda: self.client.refresh(self.session_id)
        if draw < config.p_create_viz + config.p_link:
            return "churn", self._churn
        if (
            draw
            < config.p_create_viz + config.p_link + config.p_remove_filter
        ):
            clear = [
                a
                for a in self.shadow.available_interactions()
                if a.kind in _CLEAR_KINDS
            ]
            if clear:
                choice = self.rng.choice(clear)
                return "interact", lambda: self._interact(choice)
        interaction = self.markov.next_interaction(self.shadow)
        if interaction is None:
            return "refresh", lambda: self.client.refresh(self.session_id)
        return "interact", lambda: self._interact(interaction)

    def _interact(self, interaction) -> None:
        self.client.interact(
            self.session_id, encode_interaction(interaction)
        )
        self.shadow.apply_affected(interaction)

    def _churn(self) -> None:
        if self.session_id is not None:
            self.client.close_session(self.session_id)
        self._open()
        self.client.refresh(self.session_id)

    # -- the loop ------------------------------------------------------------

    def run(self) -> None:
        try:
            self._open()
            self.client.refresh(self.session_id)  # initial render
        except Exception as exc:
            self._error(f"initial render failed: {exc}")
            self._record("refresh", 0.0, "error")
            return
        for _ in range(self.operations):
            self._think()
            kind, thunk = self._pick()
            start = time.perf_counter()
            try:
                thunk()
            except (AdmissionError, ServerReply) as exc:
                status = getattr(exc, "status", 429)
                if status == 429 or isinstance(exc, AdmissionError):
                    self._record(kind, 0.0, "rejected")
                    time.sleep(
                        min(
                            getattr(exc, "retry_after", 0.0) or MAX_BACKOFF_S,
                            MAX_BACKOFF_S,
                        )
                    )
                elif status == 404:
                    self._recreate(kind)
                else:
                    self._record(kind, 0.0, "error")
                    self._error(str(exc))
            except UnknownSessionError:
                self._recreate(kind)
            except Exception as exc:
                self._record(kind, 0.0, "error")
                self._error(f"{type(exc).__name__}: {exc}")
            else:
                self._record(
                    kind, (time.perf_counter() - start) * 1000.0, "ok"
                )
        try:
            if self.session_id is not None:
                self.client.close_session(self.session_id)
        except Exception as exc:
            self._error(f"close failed: {exc}")

    def _recreate(self, kind: str) -> None:
        """The session expired under us: re-create from the default state."""
        try:
            self._open()
            self.client.refresh(self.session_id)
            self._record(kind, 0.0, "recreated")
        except Exception as exc:
            self._record(kind, 0.0, "error")
            self._error(f"recreate failed: {exc}")


def run_load(
    client_factory,
    spec: DashboardSpec,
    table: Table,
    users: int = 16,
    operations: int = 6,
    think_s: float = 0.05,
    tenants: int = 4,
    seed: int = 0,
    engine: str | None = None,
    policy=None,
    config: IDEBenchConfig | None = None,
) -> LoadReport:
    """Run ``users`` simulated users to completion; returns the report.

    ``client_factory`` is called once per user (pass ``lambda:
    InProcessClient(app)`` or ``lambda: ServingClient(url)``); users are
    spread round-robin over ``tenants`` tenant labels.
    """
    report = LoadReport(users=users, wall_s=0.0)
    report_lock = threading.Lock()
    simulated = [
        SimulatedUser(
            index=index,
            client=client_factory(),
            spec=spec,
            table=table,
            report=report,
            report_lock=report_lock,
            tenant=f"tenant-{index % max(1, tenants)}",
            operations=operations,
            think_s=think_s,
            seed=seed,
            engine=engine,
            policy=policy,
            config=config,
        )
        for index in range(users)
    ]
    threads = [
        threading.Thread(
            target=user.run, name=f"serving-user-{user.index}", daemon=True
        )
        for user in simulated
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - start
    return report


__all__ = [
    "InProcessClient",
    "LoadReport",
    "OpRecord",
    "SimulatedUser",
    "run_load",
]
