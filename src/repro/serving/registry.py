"""Session registry: many served sessions over few shared engine hosts.

The serving tier inverts the facade's ownership model. A
:class:`~repro.facade.Session` owns its engine outright; here an
:class:`EngineHost` — one engine plus its
:class:`~repro.serving.cache.CrossSessionCache` — is shared by every
session on the same storage backend and reference-counted. Sessions
are cheap (a :class:`~repro.dashboard.state.DashboardState` and some
bookkeeping); engines are expensive (loaded tables, shared-memory
exports), so hosts outlive the sessions that ride them.

Lifecycle contract (pinned by the expiry tests):

- a session holds exactly one host reference from create to close;
- the TTL sweep closes idle sessions exactly like an explicit close;
- when a host's last session leaves, the host *quiesces*: its
  shared-memory exports are released from the process pool (the leak
  the ``/dev/shm`` probes watch for), while the engine and the warm
  cross-session cache stay resident for the next arrival.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.dashboard.spec import DashboardSpec
from repro.dashboard.state import DashboardState
from repro.engine.interface import Engine
from repro.engine.registry import create_engine
from repro.engine.table import Table
from repro.errors import AdmissionError, ConfigError, UnknownSessionError
from repro.execution import ExecutionPolicy, coerce_policy
from repro.serving.cache import CrossSessionCache


class EngineHost:
    """One shared engine + cross-session cache, reference-counted.

    ``load_table`` follows the :class:`~repro.engine.cache.CachedEngine`
    invalidation protocol — invalidate *before* the swap (readers must
    not extend a doomed group) and *after* it (a straggler store that
    captured its epoch pre-swap is voided) — so no cached result can
    outlive the table it scanned.
    """

    def __init__(self, name: str, cache_capacity: int = 128) -> None:
        self.name = name
        self.engine: Engine = create_engine(name)
        self.cache = CrossSessionCache(cache_capacity)
        self._lock = threading.Lock()
        self._refs = 0
        self._tables: dict[str, Table] = {}
        #: Per-table load counter; served sessions stamp the version
        #: their dashboard state was built against and rebuild when a
        #: reload moves it (widget domains derive from table data).
        self._versions: dict[str, int] = {}

    # -- tables --------------------------------------------------------------

    def load_table(self, table: Table) -> None:
        with self._lock:
            self._tables[table.name] = table
            self._versions[table.name] = (
                self._versions.get(table.name, 0) + 1
            )
        self.cache.invalidate_table(table.name)
        self.engine.load_table(table)
        self.cache.invalidate_table(table.name)

    def table(self, name: str) -> Table:
        with self._lock:
            table = self._tables.get(name)
        if table is None:
            raise ConfigError(
                f"engine host {self.name!r} has no table {name!r}; "
                f"load it through the app first"
            )
        return table

    def table_version(self, name: str) -> int:
        with self._lock:
            return self._versions.get(name, 0)

    @property
    def tables(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tables))

    # -- reference counting --------------------------------------------------

    def retain(self) -> None:
        with self._lock:
            self._refs += 1

    def release(self) -> int:
        """Drop one session reference; quiesce on the last one out."""
        with self._lock:
            self._refs = max(0, self._refs - 1)
            remaining = self._refs
        if remaining == 0:
            self.quiesce()
        return remaining

    @property
    def refs(self) -> int:
        with self._lock:
            return self._refs

    def quiesce(self) -> None:
        """Release pooled shared-memory exports, keep the engine warm.

        Idle hosts must not pin ``/dev/shm`` segments (the expiry-sweep
        test attaches to prove they are gone), but dropping the loaded
        tables or the cross-session cache would make every first
        arrival a cold start — so only the pool exports go.
        """
        from repro.concurrency.procpool import release_engine_exports

        release_engine_exports(self.engine)

    def close(self) -> None:
        self.quiesce()
        self.cache.clear()
        self.engine.close()


class ServedSession:
    """One user's live dashboard on a shared engine host."""

    def __init__(
        self,
        session_id: str,
        tenant: str,
        host: EngineHost,
        spec: DashboardSpec,
        policy: ExecutionPolicy,
        now: float,
    ) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.host = host
        self.spec = spec
        self.policy = policy
        self.created = now
        self.last_used = now
        #: Serializes this session's own requests — dashboard state is
        #: not thread-safe; co-tenant sessions proceed in parallel.
        self.lock = threading.Lock()
        self.closed = False
        self._state: DashboardState | None = None
        self._version = -1

    @property
    def state(self) -> DashboardState:
        """The live dashboard state, rebuilt after a table reload.

        A replaced table resets dependent dashboards to their default
        state — the same semantics as :meth:`repro.facade.Session.load`
        dropping cached states — because widget domains and range steps
        derive from the table's data at construction.
        """
        version = self.host.table_version(self.spec.database.table)
        if self._state is None or version != self._version:
            self._state = DashboardState(
                self.spec, self.host.table(self.spec.database.table)
            )
            self._version = version
        return self._state


class SessionRegistry:
    """Create/attach/expire served sessions, with a TTL sweep.

    The clock is injectable so expiry tests advance time instead of
    sleeping. Session ids are sequential (``s-000001``) — this is a
    benchmark reproduction, not an auth boundary; tenancy is a label
    for fairness and accounting, not a security perimeter.
    """

    def __init__(
        self,
        session_ttl: float = 300.0,
        max_sessions_per_tenant: int = 0,
        clock=time.monotonic,
    ) -> None:
        self.session_ttl = session_ttl
        self.max_sessions_per_tenant = max_sessions_per_tenant
        self.clock = clock
        self._lock = threading.Lock()
        self._sessions: dict[str, ServedSession] = {}
        self._ids = itertools.count(1)
        self._created = 0
        self._expired = 0
        self._closed = 0

    # -- lifecycle -----------------------------------------------------------

    def create(
        self,
        tenant: str,
        host: EngineHost,
        spec: DashboardSpec,
        policy: ExecutionPolicy | str | None = None,
    ) -> ServedSession:
        self.sweep()  # expire opportunistically even without the thread
        now = self.clock()
        resolved = (
            ExecutionPolicy() if policy is None else coerce_policy(policy)
        )
        with self._lock:
            if self.max_sessions_per_tenant:
                held = sum(
                    1
                    for s in self._sessions.values()
                    if s.tenant == tenant
                )
                if held >= self.max_sessions_per_tenant:
                    raise AdmissionError(
                        f"tenant {tenant!r} holds {held} sessions "
                        f"(cap {self.max_sessions_per_tenant}); close or "
                        f"expire one first"
                    )
            session_id = f"s-{next(self._ids):06d}"
            session = ServedSession(
                session_id, tenant, host, spec, resolved, now
            )
            host.retain()
            self._sessions[session_id] = session
            self._created += 1
        return session

    def get(self, session_id: str, touch: bool = True) -> ServedSession:
        """Attach to a live session (bumping its idle clock)."""
        now = self.clock()
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None and touch:
                session.last_used = now
        if session is None:
            raise UnknownSessionError(
                f"no live session {session_id!r} (never created, closed, "
                f"or expired by the TTL sweep)"
            )
        return session

    def close(self, session_id: str) -> bool:
        """Close one session, releasing its host reference."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self._closed += 1
        if session is None:
            return False
        self._release(session)
        return True

    def sweep(self, now: float | None = None) -> list[str]:
        """Expire every session idle longer than the TTL."""
        now = self.clock() if now is None else now
        cutoff = now - self.session_ttl
        with self._lock:
            expired = [
                session
                for session in self._sessions.values()
                if session.last_used <= cutoff
            ]
            for session in expired:
                del self._sessions[session.session_id]
            self._expired += len(expired)
        for session in expired:
            self._release(session)
        return [session.session_id for session in expired]

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._closed += len(sessions)
        for session in sessions:
            self._release(session)

    @staticmethod
    def _release(session: ServedSession) -> None:
        session.closed = True
        session.host.release()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def by_tenant(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for session in self._sessions.values():
                counts[session.tenant] = counts.get(session.tenant, 0) + 1
            return counts

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "live": len(self._sessions),
                "created": self._created,
                "expired": self._expired,
                "closed": self._closed,
            }


__all__ = ["EngineHost", "ServedSession", "SessionRegistry"]
