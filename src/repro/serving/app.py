"""The dashboard server's core: sessions, admission, cache, accounting.

:class:`ServingApp` is the transport-independent server — everything
:mod:`repro.serving.server` does over HTTP and the load generator does
in-process goes through these methods, so the protocol tests and the
soak exercise the same code path.

Request anatomy (the span parentage the telemetry tests pin)::

    request{kind,tenant}                 admission slot held
    └── session{session,dashboard}       per-session lock held
        └── refresh                      DashboardState.refresh (on miss)
            └── scan_group ...           the PR-7 execution span tree

Accounting lands in one :class:`~repro.telemetry.MetricsRegistry`
(either the provided bundle's or the app's own): ``serving.sessions``
(gauge, total and per tenant), ``serving.queue_depth`` /
``serving.in_flight`` (gauges), ``serving.latency_ms{tenant=}``
(histogram), ``serving.requests`` / ``serving.rejected`` /
``serving.errors`` counters, and the cross-session cache hit rate via
``serving.cache.{hits,misses}``.
"""

from __future__ import annotations

import threading
import time
from contextlib import ExitStack

from repro.dashboard.spec import DashboardSpec
from repro.engine.interface import QueryResult
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.execution import ExecutionPolicy
from repro.serving.admission import AdmissionController
from repro.serving.config import ServingConfig
from repro.serving.protocol import decode_interaction
from repro.serving.registry import EngineHost, ServedSession, SessionRegistry
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry import trace as _trace


class ServingApp:
    """A long-lived multi-tenant dashboard server (transport-free core).

    Owns the engine hosts, the session registry, and the admission
    controller; every request method is thread-safe and callable from
    any transport. With a :class:`~repro.telemetry.Telemetry` bundle,
    :meth:`start` activates it process-wide (the unscoped form — a
    threaded server cannot use the scoped ``install()``), giving every
    request the full ``request → session → refresh`` span tree.
    """

    def __init__(
        self,
        config: ServingConfig | None = None,
        telemetry: Telemetry | None = None,
        default_engine: str = "sqlite",
        default_policy: ExecutionPolicy | str | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServingConfig()
        self.telemetry = telemetry
        self.metrics: MetricsRegistry = (
            telemetry.registry if telemetry is not None else MetricsRegistry()
        )
        self.default_engine = default_engine
        self.default_policy = default_policy
        self.clock = clock
        self.registry = SessionRegistry(
            session_ttl=self.config.session_ttl,
            max_sessions_per_tenant=self.config.max_sessions_per_tenant,
            clock=clock,
        )
        self.admission = AdmissionController(self.config, clock=clock)
        self._lock = threading.Lock()
        self._hosts: dict[str, EngineHost] = {}
        self._tables: dict[str, Table] = {}
        self._specs: dict[str, DashboardSpec] = {}
        self._errors = 0  # unexpected failures (the soak's "5xx" count)
        self._stop = threading.Event()
        self._sweeper: threading.Thread | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServingApp":
        """Activate telemetry and the background TTL sweeper; chainable."""
        if self.telemetry is not None:
            self.telemetry.activate()
        if self._sweeper is None:
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="serving-sweeper", daemon=True
            )
            self._sweeper.start()
        return self

    def close(self) -> None:
        """Stop sweeping, close every session and host. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
            self._sweeper = None
        self.registry.close_all()
        with self._lock:
            hosts, self._hosts = list(self._hosts.values()), {}
        for host in hosts:
            host.close()
        if self.telemetry is not None:
            self.telemetry.deactivate()

    def __enter__(self) -> "ServingApp":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.config.sweep_interval):
            try:
                self.sweep()
            except Exception:  # pragma: no cover - sweeper must not die
                self._errors += 1
                self.metrics.inc("serving.errors")

    def sweep(self) -> list[str]:
        """One TTL sweep (also runs opportunistically on create)."""
        expired = self.registry.sweep()
        if expired:
            self._publish_sessions()
        return expired

    # -- data & dashboards (owner-side, not tenant-facing) -------------------

    def load_table(self, table: Table) -> "ServingApp":
        """Load (or replace) a table in every engine host; chainable.

        A replace invalidates the cross-session cache for that table on
        each host (epoch bump) and resets dependent dashboard states on
        their next request, mirroring :meth:`repro.facade.Session.load`.
        """
        with self._lock:
            self._tables[table.name] = table
            hosts = list(self._hosts.values())
        for host in hosts:
            host.load_table(table)
        return self

    def register_dashboard(self, dashboard) -> DashboardSpec:
        """Make a dashboard spec servable (spec object or library name)."""
        if isinstance(dashboard, str):
            from repro.dashboard.library import load_dashboard

            dashboard = load_dashboard(dashboard)
        if not isinstance(dashboard, DashboardSpec):
            raise ConfigError(
                f"dashboard must be a DashboardSpec or library name, "
                f"got {dashboard!r}"
            )
        with self._lock:
            self._specs[dashboard.name] = dashboard
        return dashboard

    def host_for(self, engine: str) -> EngineHost:
        """The shared host for one engine kind, created on first use."""
        with self._lock:
            host = self._hosts.get(engine)
            if host is not None:
                return host
            tables = list(self._tables.values())
            host = EngineHost(engine, self.config.cache_capacity)
            self._hosts[engine] = host
        for table in tables:
            host.load_table(table)
        return host

    # -- tenant-facing requests ----------------------------------------------

    def create_session(
        self,
        tenant: str,
        dashboard: str,
        engine: str | None = None,
        policy: ExecutionPolicy | str | None = None,
    ) -> dict:
        """Create a session; returns its descriptor (JSON-safe)."""
        with self._lock:
            spec = self._specs.get(dashboard)
        if spec is None:
            raise ConfigError(
                f"unknown dashboard {dashboard!r}; register it on the "
                f"app first"
            )
        host = self.host_for(engine or self.default_engine)
        session = self.registry.create(
            tenant,
            host,
            spec,
            policy if policy is not None else self.default_policy,
        )
        self.metrics.inc("serving.sessions_created", tenant=tenant)
        self._publish_sessions()
        return {
            "session_id": session.session_id,
            "tenant": tenant,
            "dashboard": spec.name,
            "engine": host.name,
            "policy": session.policy.describe(),
        }

    def close_session(self, session_id: str) -> dict:
        closed = self.registry.close(session_id)
        if closed:
            self._publish_sessions()
        return {"session_id": session_id, "closed": closed}

    def refresh(
        self, session_id: str, viz_ids=None
    ) -> dict[str, QueryResult]:
        """Serve one dashboard refresh through the cross-session cache."""
        session = self.registry.get(session_id)

        def run() -> dict[str, QueryResult]:
            state = session.state
            return session.host.cache.refresh(
                state, session.host.engine, viz_ids, session.policy
            )

        return self._request("refresh", session, run)

    def interact(self, session_id: str, interaction) -> tuple:
        """Apply one interaction; refresh and return its fan-out.

        ``interaction`` is an :class:`~repro.dashboard.state.Interaction`
        or its JSON encoding. Returns ``(affected_ids, results)``.
        """
        session = self.registry.get(session_id)
        decoded = decode_interaction(interaction)
        affected: list[str] = []

        def run() -> dict[str, QueryResult]:
            state = session.state
            affected.extend(state.apply_affected(decoded))
            if not affected:
                return {}
            return session.host.cache.refresh(
                state, session.host.engine, affected, session.policy
            )

        results = self._request("interact", session, run)
        return list(affected), results

    def describe_session(self, session_id: str) -> dict:
        """Attach: the session's descriptor plus its interaction state."""
        session = self.registry.get(session_id)
        return {
            "session_id": session.session_id,
            "tenant": session.tenant,
            "dashboard": session.spec.name,
            "engine": session.host.name,
            "policy": session.policy.describe(),
            "state_key": repr(session.state.state_key()),
        }

    # -- request plumbing ----------------------------------------------------

    def _request(self, kind: str, session: ServedSession, fn):
        """Admission + per-session serialization + spans + accounting."""
        start = time.perf_counter()
        try:
            with self.admission.slot(session.tenant):
                self._publish_pressure()
                with session.lock:
                    with ExitStack() as stack:
                        tracer = _trace.ACTIVE
                        if tracer is not None:
                            stack.enter_context(
                                tracer.span(
                                    "request", kind=kind,
                                    tenant=session.tenant,
                                )
                            )
                            stack.enter_context(
                                tracer.span(
                                    "session",
                                    session=session.session_id,
                                    dashboard=session.spec.name,
                                )
                            )
                        result = fn()
        except Exception as exc:
            from repro.errors import (
                AdmissionError,
                InteractionError,
                UnknownSessionError,
            )

            if isinstance(exc, AdmissionError):
                self.metrics.inc(
                    "serving.rejected", tenant=session.tenant
                )
            elif not isinstance(
                exc, (InteractionError, UnknownSessionError)
            ):
                self._errors += 1  # a client error is not a server fault
                self.metrics.inc("serving.errors")
            raise
        finally:
            self._publish_pressure()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.inc("serving.requests", tenant=session.tenant)
        self.metrics.observe("serving.latency_ms", elapsed_ms)
        self.metrics.observe(
            "serving.latency_ms", elapsed_ms, tenant=session.tenant
        )
        return result

    def _publish_sessions(self) -> None:
        self.metrics.set_gauge("serving.sessions", len(self.registry))
        for tenant, count in self.registry.by_tenant().items():
            self.metrics.set_gauge("serving.sessions", count, tenant=tenant)

    def _publish_pressure(self) -> None:
        self.metrics.set_gauge(
            "serving.queue_depth", self.admission.queue_depth
        )
        self.metrics.set_gauge(
            "serving.in_flight", self.admission.in_flight
        )

    # -- introspection -------------------------------------------------------

    @property
    def error_count(self) -> int:
        """Unexpected failures so far (the soak's zero-5xx assertion)."""
        return self._errors

    def stats(self) -> dict:
        """One JSON-safe roll-up: sessions, admission, caches, metrics."""
        with self._lock:
            hosts = dict(self._hosts)
        caches = {}
        for name, host in hosts.items():
            cache_stats = host.cache.stats
            caches[name] = {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "refreshes": cache_stats.refreshes,
                "served_refreshes": cache_stats.served_refreshes,
                "hit_rate": round(cache_stats.hit_rate, 6),
                "refs": host.refs,
            }
        return {
            "sessions": self.registry.snapshot(),
            "by_tenant": self.registry.by_tenant(),
            "admission": self.admission.snapshot(),
            "caches": caches,
            "errors": self._errors,
            "metrics": self.metrics.snapshot(),
        }

    def healthz(self) -> dict:
        return {
            "status": "closed" if self._closed else "ok",
            "sessions": len(self.registry),
            "in_flight": self.admission.in_flight,
            "errors": self._errors,
        }


__all__ = ["ServingApp"]
