"""The serving wire protocol: JSON in, JSON out, byte-identical values.

Everything the server accepts or returns is plain JSON built on the
*same* tagged value codec the workload generator uses for recorded
sessions (:func:`repro.workloadgen.sessions.encode_value`) — datetimes
as ``{"@ts": iso}``, dates as ``{"@date": iso}``, tuples as
``{"@seq": [...]}`` — so an interaction recorded by one layer always
replays through the other, and result cells survive the HTTP hop
byte-identically (Python's ``json`` round-trips floats exactly via
``repr``).

The headline byte-identity tests decode served payloads back into
:class:`~repro.engine.interface.QueryResult` objects and compare them
against a direct :class:`~repro.facade.Session` refresh with the same
``identity_signature`` machinery the stress matrix uses.
"""

from __future__ import annotations

from repro.dashboard.state import Interaction, InteractionKind
from repro.engine.interface import QueryResult, ResultSet
from repro.errors import ServingError
from repro.workloadgen.sessions import decode_value, encode_value


# -- interactions ------------------------------------------------------------


def encode_interaction(interaction: Interaction) -> dict:
    return {
        "kind": interaction.kind.value,
        "target": interaction.target,
        "value": encode_value(interaction.value),
    }


def decode_interaction(payload: object) -> Interaction:
    if isinstance(payload, Interaction):
        return payload
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ServingError(
            f"interaction payload must be a dict with a 'kind', "
            f"got {payload!r}"
        )
    try:
        kind = InteractionKind(payload["kind"])
    except ValueError as exc:
        raise ServingError(str(exc)) from exc
    return Interaction(
        kind=kind,
        target=payload.get("target"),
        value=decode_value(payload.get("value")),
    )


# -- results -----------------------------------------------------------------


def encode_results(results: dict[str, QueryResult]) -> dict:
    """Timed refresh results as a JSON-safe dict keyed by viz id."""
    return {
        viz_id: {
            "columns": list(timed.result.columns),
            "rows": [
                [encode_value(cell) for cell in row]
                for row in timed.result.rows
            ],
            "duration_ms": timed.duration_ms,
            "engine": timed.engine,
            "sql": timed.sql,
        }
        for viz_id, timed in results.items()
    }


def decode_results(payload: dict) -> dict[str, QueryResult]:
    """The inverse of :func:`encode_results` (client/test side)."""
    return {
        viz_id: QueryResult(
            result=ResultSet(
                entry["columns"],
                [
                    tuple(decode_value(cell) for cell in row)
                    for row in entry["rows"]
                ],
            ),
            duration_ms=entry["duration_ms"],
            engine=entry["engine"],
            sql=entry["sql"],
        )
        for viz_id, entry in payload.items()
    }


def results_signature(results: dict[str, QueryResult]) -> dict:
    """Canonical ``{viz: (columns, sorted rows)}`` identity structure.

    The per-refresh analogue of
    :meth:`~repro.workloadgen.sessions.ReplayLog.identity_signature`:
    two refreshes produced identical bytes iff their signatures compare
    equal (rows sorted by ``repr`` — row order is not part of the
    identity contract for unordered grouped queries).
    """
    return {
        viz_id: (
            tuple(timed.result.columns),
            tuple(sorted(timed.result.rows, key=repr)),
        )
        for viz_id, timed in sorted(results.items())
    }


__all__ = [
    "decode_interaction",
    "decode_results",
    "encode_interaction",
    "encode_results",
    "results_signature",
]
