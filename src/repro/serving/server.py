"""HTTP transport for the serving tier: stdlib ``http.server`` only.

A thin adapter — every route delegates to the transport-free
:class:`~repro.serving.app.ServingApp`, so the HTTP layer adds exactly
two things: JSON (de)serialization via :mod:`repro.serving.protocol`
and status-code mapping for the error hierarchy:

====================================  ======
:class:`~repro.errors.UnknownSessionError`   404
:class:`~repro.errors.AdmissionError`        429 + ``Retry-After``
:class:`~repro.errors.InteractionError`,
:class:`~repro.errors.ServingError`,
:class:`~repro.errors.ConfigError`           400
anything else                                500
====================================  ======

Routes::

    POST   /sessions                       create (tenant, dashboard, …)
    GET    /sessions/<id>                  attach / describe
    DELETE /sessions/<id>                  close
    POST   /sessions/<id>/refresh          refresh (optional viz_ids)
    POST   /sessions/<id>/interact         apply + refresh fan-out
    GET    /stats                          accounting roll-up
    GET    /healthz                        liveness

:class:`ServingClient` is the matching urllib client; the load
generator and the CI soak drive the server through it.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    AdmissionError,
    ConfigError,
    InteractionError,
    ServingError,
    UnknownSessionError,
)
from repro.serving.app import ServingApp
from repro.serving.protocol import decode_results, encode_results


class _Handler(BaseHTTPRequestHandler):
    """One request; the app lives on the server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    # The default handler writes every request to stderr; a 500-user
    # soak would drown the terminal.
    def log_message(self, format: str, *args: object) -> None:
        pass

    @property
    def app(self) -> ServingApp:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except ValueError as exc:
            raise ServingError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        try:
            route = self._route(method)
            if route is None:
                self._reply(404, {"error": f"no route {method} {self.path}"})
                return
            status, payload, headers = route
            self._reply(status, payload, headers)
        except UnknownSessionError as exc:
            self._reply(404, {"error": str(exc)})
        except AdmissionError as exc:
            self._reply(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                [("Retry-After", f"{exc.retry_after:g}")],
            )
        except (InteractionError, ServingError, ConfigError) as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # the soak asserts this stays at zero
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str):
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        app = self.app
        if method == "GET" and parts == ["healthz"]:
            return 200, app.healthz(), ()
        if method == "GET" and parts == ["stats"]:
            return 200, app.stats(), ()
        if parts[:1] != ["sessions"]:
            return None
        if method == "POST" and len(parts) == 1:
            body = self._body()
            if "tenant" not in body or "dashboard" not in body:
                raise ServingError(
                    "session creation needs 'tenant' and 'dashboard'"
                )
            return 201, app.create_session(
                tenant=body["tenant"],
                dashboard=body["dashboard"],
                engine=body.get("engine"),
                policy=body.get("policy"),
            ), ()
        if len(parts) < 2:
            return None
        session_id = parts[1]
        if method == "GET" and len(parts) == 2:
            return 200, app.describe_session(session_id), ()
        if method == "DELETE" and len(parts) == 2:
            return 200, app.close_session(session_id), ()
        if method == "POST" and parts[2:] == ["refresh"]:
            body = self._body()
            results = app.refresh(session_id, body.get("viz_ids"))
            return 200, {"results": encode_results(results)}, ()
        if method == "POST" and parts[2:] == ["interact"]:
            body = self._body()
            if "interaction" not in body:
                raise ServingError("interact needs an 'interaction'")
            affected, results = app.interact(
                session_id, body["interaction"]
            )
            return 200, {
                "affected": affected,
                "results": encode_results(results),
            }, ()
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class _Server(ThreadingHTTPServer):
    # The stdlib default listen backlog (5) resets connections when a
    # load generator opens dozens of sockets at once; admission control
    # is the serving tier's job, not the kernel accept queue's.
    request_queue_size = 128


class DashboardServer:
    """A listening serving tier: one app behind ``ThreadingHTTPServer``.

    Binds ``host:port`` (port 0 picks a free one) but only serves once
    :meth:`start` runs. Use as a context manager::

        app = ServingApp().load_table(table)
        app.register_dashboard(spec)
        with DashboardServer(app) as server:
            client = ServingClient(server.url)
            ...
    """

    def __init__(
        self, app: ServingApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self._httpd = _Server((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "DashboardServer":
        self.app.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serving-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServingClient:
    """Minimal urllib client speaking the server's JSON protocol.

    Raises :class:`ServerReply` for non-2xx responses so callers can
    branch on ``status`` (429 → honor ``retry_after``, 404 →
    re-create the session) without parsing exception text.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            raise ServerReply(
                exc.code,
                payload.get("error", str(exc)),
                retry_after=float(
                    payload.get("retry_after")
                    or exc.headers.get("Retry-After")
                    or 0.0
                ),
            ) from None

    def create_session(
        self, tenant: str, dashboard: str, engine=None, policy=None
    ) -> dict:
        body = {"tenant": tenant, "dashboard": dashboard}
        if engine is not None:
            body["engine"] = engine
        if policy is not None:
            body["policy"] = policy
        return self._call("POST", "/sessions", body)

    def describe_session(self, session_id: str) -> dict:
        return self._call("GET", f"/sessions/{session_id}")

    def close_session(self, session_id: str) -> dict:
        return self._call("DELETE", f"/sessions/{session_id}")

    def refresh(self, session_id: str, viz_ids=None) -> dict:
        body = {} if viz_ids is None else {"viz_ids": list(viz_ids)}
        reply = self._call("POST", f"/sessions/{session_id}/refresh", body)
        return decode_results(reply["results"])

    def interact(self, session_id: str, interaction: dict) -> tuple:
        reply = self._call(
            "POST",
            f"/sessions/{session_id}/interact",
            {"interaction": interaction},
        )
        return reply["affected"], decode_results(reply["results"])

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def healthz(self) -> dict:
        return self._call("GET", "/healthz")


class ServerReply(ServingError):
    """A non-2xx HTTP reply, surfaced with its status and hint."""

    def __init__(
        self, status: int, message: str, retry_after: float = 0.0
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


__all__ = [
    "DashboardServer",
    "ServerReply",
    "ServingClient",
]
