"""Admission control: bounded in-flight refreshes, bounded queue, fairness.

A refresh is the serving tier's unit of compute — potentially a whole
``refresh_many`` fan-out of shards and processes — so the server bounds
how many execute concurrently (``max_in_flight``) and how many may
*wait* for a slot (``max_queue_depth``). Everything past that is
rejected immediately with a ``Retry-After`` hint: on an overloaded
server, an honest 429 in microseconds beats a 200 after a
ten-second invisible queue (the tail-latency failure mode dashboards
are notorious for).

Fairness is computed at admission time, not with static partitions:
each *active* tenant (one with requests in flight or waiting) may hold
at most ``ceil(max_in_flight / active_tenants)`` slots. A lone tenant
uses the whole server; the moment a second tenant shows up, the cap
halves and the newcomer is admitted as slots drain — a chatty tenant
cannot starve a quiet one.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import AdmissionError
from repro.serving.config import ServingConfig


class AdmissionController:
    """Grant refresh slots under the config's concurrency bounds.

    Use as ``with admission.slot(tenant): ...``; the body runs with an
    in-flight slot held. Raises :class:`~repro.errors.AdmissionError`
    (with the config's ``retry_after``) when the wait queue is full or
    the queue timeout expires.
    """

    def __init__(self, config: ServingConfig, clock=time.monotonic) -> None:
        self.config = config
        self.clock = clock
        self._lock = threading.Lock()
        self._slots_free = threading.Condition(self._lock)
        self._in_flight = 0
        self._queued = 0
        self._by_tenant: dict[str, int] = {}  # in-flight per tenant
        self._waiting: dict[str, int] = {}  # queued per tenant
        self._admitted = 0
        self._rejected_queue_full = 0
        self._rejected_timeout = 0

    # -- the slot protocol ---------------------------------------------------

    @contextmanager
    def slot(self, tenant: str = "default"):
        self._acquire(tenant)
        try:
            yield
        finally:
            self._release(tenant)

    def _tenant_cap_locked(self, tenant: str) -> int:
        """Fair per-tenant slot cap given who is active right now."""
        active = set(self._by_tenant) | set(self._waiting) | {tenant}
        count = len(active)
        return max(1, -(-self.config.max_in_flight // count))  # ceil div

    def _admissible_locked(self, tenant: str) -> bool:
        return (
            self._in_flight < self.config.max_in_flight
            and self._by_tenant.get(tenant, 0)
            < self._tenant_cap_locked(tenant)
        )

    def _acquire(self, tenant: str) -> None:
        config = self.config
        with self._slots_free:
            if self._admissible_locked(tenant):
                self._admit_locked(tenant)
                return
            if self._queued >= config.max_queue_depth:
                self._rejected_queue_full += 1
                raise AdmissionError(
                    f"server saturated: {self._in_flight} refreshes in "
                    f"flight, {self._queued} queued "
                    f"(max_queue_depth={config.max_queue_depth})",
                    retry_after=config.retry_after,
                )
            deadline = self.clock() + config.queue_timeout
            self._queued += 1
            self._waiting[tenant] = self._waiting.get(tenant, 0) + 1
            try:
                while not self._admissible_locked(tenant):
                    remaining = deadline - self.clock()
                    if remaining <= 0 or not self._slots_free.wait(
                        timeout=remaining
                    ):
                        if not self._admissible_locked(tenant):
                            self._rejected_timeout += 1
                            raise AdmissionError(
                                f"queued {config.queue_timeout:.1f}s "
                                f"without an in-flight slot freeing",
                                retry_after=config.retry_after,
                            )
                self._admit_locked(tenant)
            finally:
                self._queued -= 1
                if self._waiting.get(tenant, 0) <= 1:
                    self._waiting.pop(tenant, None)
                else:
                    self._waiting[tenant] -= 1

    def _admit_locked(self, tenant: str) -> None:
        self._in_flight += 1
        self._by_tenant[tenant] = self._by_tenant.get(tenant, 0) + 1
        self._admitted += 1

    def _release(self, tenant: str) -> None:
        with self._slots_free:
            self._in_flight -= 1
            if self._by_tenant.get(tenant, 0) <= 1:
                self._by_tenant.pop(tenant, None)
            else:
                self._by_tenant[tenant] -= 1
            self._slots_free.notify_all()

    # -- introspection -------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted": self._admitted,
                "rejected_queue_full": self._rejected_queue_full,
                "rejected_timeout": self._rejected_timeout,
                "by_tenant": dict(self._by_tenant),
            }


__all__ = ["AdmissionController"]
