"""Cross-session result cache: one tenant's refresh warms every co-tenant.

The serving tier multiplexes many user sessions over one shared engine
per storage backend. Most of those users look at the *same* dashboards
in the *same* states (the all-defaults initial render above all), so
the highest-leverage cache sits **above** the sessions: results keyed
exactly the way :class:`~repro.engine.cache.CachedEngine` keys scan
groups — ``(table, normalized predicate)`` → ``{canonical SQL:
result}`` — shared by every session on the host.

This module deliberately *reuses* the engine layer's
:class:`~repro.engine.cache.ScanGroupCache` rather than inventing a
second keying scheme: the keys come from the same
:func:`~repro.engine.planner.scan_signature` /
:func:`~repro.sql.formatter.format_query` pair the batch executor
groups by, so a result cached here is indistinguishable from one the
scan-group cache would have produced, and the same epoch protocol
guards both against the load-table race.

Consistency contract (pinned by ``tests/test_serving.py`` and the
interleaving property test):

- **Epoch-guarded stores.** Each refresh captures the epoch of every
  table it reads *before* executing; a store whose table was
  invalidated mid-compute is silently dropped (the "lost invalidation"
  the concurrent-tenant hammer guards).
- **Single-flight across sessions.** Concurrent identical refreshes
  — co-tenants hammering the same dashboard state — collapse to one
  engine execution; followers share the leader's (immutable) results.
- **Join queries bypass.** Queries without a scan signature are never
  cached (mirroring the batch executor's fallback tier), so the cache
  can never serve a stale multi-table read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.concurrency.singleflight import SingleFlight
from repro.engine.batch import _query_keys
from repro.engine.cache import ScanGroupCache
from repro.engine.interface import Engine, QueryResult, ResultSet
from repro.telemetry import metrics as _metrics


@dataclass(frozen=True)
class CacheStats:
    """Cumulative cross-session cache activity, cheap to print."""

    hits: int  # queries served without engine work
    misses: int  # queries that had to execute
    refreshes: int  # refresh requests observed
    served_refreshes: int  # refreshes answered entirely from cache

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class CrossSessionCache:
    """Refresh-level cache over one shared engine host.

    :meth:`refresh` is the serving tier's single read path: it serves
    whatever the group cache already holds, executes only the missing
    visualizations through the ordinary
    :meth:`~repro.dashboard.state.DashboardState.refresh` machinery
    (shared scans, shards, multiplan — whatever the tenant's policy
    says), and stores the fresh results for every co-tenant. Results
    are byte-identical to an uncached direct refresh: cached rows are
    the immutable tuples the engine produced.
    """

    def __init__(self, capacity: int = 128) -> None:
        self._groups = ScanGroupCache(capacity)
        self._flight = SingleFlight()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._refreshes = 0
        self._served_refreshes = 0

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                refreshes=self._refreshes,
                served_refreshes=self._served_refreshes,
            )

    @property
    def groups(self) -> ScanGroupCache:
        """The underlying scan-group store (shared keying with the engine cache)."""
        return self._groups

    # -- invalidation --------------------------------------------------------

    def invalidate_table(self, name: str) -> None:
        """Drop every cached result that scanned ``name`` (epoch bump)."""
        self._groups.invalidate_table(name)

    def clear(self) -> None:
        self._groups.clear()

    # -- the read path -------------------------------------------------------

    def refresh(
        self,
        state,
        engine: Engine,
        viz_ids=None,
        policy=None,
    ) -> dict[str, QueryResult]:
        """Serve one dashboard refresh through the cross-session cache.

        Returns timed results keyed by visualization id, exactly like
        :meth:`DashboardState.refresh`. Served entries carry the (tiny)
        lookup duration — the latency the *user* observed — while
        executed entries keep their engine timing.
        """
        ids = sorted(state.visualizations) if viz_ids is None else list(viz_ids)
        queries = {v: state.query_for(v) for v in ids}
        keys = {v: _query_keys(queries[v]) for v in ids}  # (sql, signature)

        results: dict[str, QueryResult] = {}
        missing: list[str] = []
        for viz_id in ids:
            sql, signature = keys[viz_id]
            if signature is None:
                missing.append(viz_id)  # joins: never cross-session cached
                continue
            lookup_start = time.perf_counter()
            cached = self._groups.lookup(
                signature.table, signature.predicate_key
            ).get(sql)
            if cached is None:
                missing.append(viz_id)
                continue
            results[viz_id] = QueryResult(
                result=ResultSet(cached.columns, cached.rows),
                duration_ms=(time.perf_counter() - lookup_start) * 1000.0,
                engine=engine.name,
                sql=sql,
            )

        hits = len(ids) - len(missing)
        if not missing:
            self._account(hits, 0, served=True)
            return results

        # Only the missing visualizations execute; the flight key is the
        # exact (viz, sql) set, so two sessions in the same dashboard
        # state — same queries — collapse to one engine execution.
        flight_key = tuple(sorted((v, keys[v][0]) for v in missing))

        def compute() -> dict[str, QueryResult]:
            epochs = {}
            for viz_id in missing:
                signature = keys[viz_id][1]
                if signature is not None and signature.table not in epochs:
                    # Captured before any engine work: a load_table that
                    # lands mid-refresh moves the epoch and voids the
                    # store below.
                    epochs[signature.table] = self._groups.epoch(
                        signature.table
                    )
            fresh = state.refresh(engine, viz_ids=missing, policy=policy)
            by_group: dict[tuple[str, str], dict[str, ResultSet]] = {}
            for viz_id, timed in fresh.items():
                sql, signature = keys[viz_id]
                if signature is None:
                    continue
                by_group.setdefault(
                    (signature.table, signature.predicate_key), {}
                )[sql] = timed.result
            for (table, predicate_key), members in by_group.items():
                self._groups.store(
                    table, predicate_key, members, epoch=epochs.get(table)
                )
            return fresh

        fresh, leader = self._flight.do(flight_key, compute)
        if leader:
            self._account(hits, len(missing), served=False)
        else:
            # A follower rode a co-tenant's computation: no engine work
            # happened on this session's behalf — every query was a
            # cross-session hit.
            self._account(hits + len(missing), 0, served=True)
            fresh = {
                viz_id: QueryResult(
                    result=ResultSet(
                        timed.result.columns, timed.result.rows
                    ),
                    duration_ms=timed.duration_ms,
                    engine=timed.engine,
                    sql=timed.sql,
                )
                for viz_id, timed in fresh.items()
            }
        results.update(fresh)
        return results

    def _account(self, hits: int, misses: int, served: bool) -> None:
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._refreshes += 1
            if served:
                self._served_refreshes += 1
        registry = _metrics.ACTIVE
        if registry is not None:
            if hits:
                registry.inc("serving.cache.hits", hits)
            if misses:
                registry.inc("serving.cache.misses", misses)


__all__ = ["CacheStats", "CrossSessionCache"]
