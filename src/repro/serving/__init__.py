"""The multi-tenant serving tier: dashboards as a long-lived service.

PRs 1–8 built the execution stack beneath a single
:func:`repro.connect` session; this package is the layer the ROADMAP's
"millions of users" north star actually needs — the part that outlives
any one session:

- :class:`~repro.serving.registry.SessionRegistry` —
  create/attach/expire with a TTL sweep; sessions ride shared,
  reference-counted :class:`~repro.serving.registry.EngineHost`\\ s.
- :class:`~repro.serving.admission.AdmissionController` — bounded
  in-flight refreshes, bounded queue, ``Retry-After`` rejection,
  per-tenant fairness.
- :class:`~repro.serving.cache.CrossSessionCache` — one tenant's
  refresh warms every co-tenant, keyed exactly like the engine's
  scan-group cache and guarded by the same epoch protocol.
- :class:`~repro.serving.app.ServingApp` — the transport-free server;
  :class:`~repro.serving.server.DashboardServer` — the stdlib HTTP
  front end; :func:`~repro.serving.loadgen.run_load` — IDEBench-mix
  simulated users with think-time.

Quickstart (executed by ``tools/check_docs.py`` via
``examples/serving_quickstart.py``)::

    from repro.serving import DashboardServer, ServingApp, ServingClient

    app = ServingApp()
    app.load_table(table)
    app.register_dashboard(spec)
    with DashboardServer(app) as server:
        client = ServingClient(server.url)
        session = client.create_session("tenant-a", spec.name)
        results = client.refresh(session["session_id"])
"""

from repro.serving.admission import AdmissionController
from repro.serving.app import ServingApp
from repro.serving.cache import CacheStats, CrossSessionCache
from repro.serving.config import ServingConfig
from repro.serving.loadgen import (
    InProcessClient,
    LoadReport,
    SimulatedUser,
    run_load,
)
from repro.serving.protocol import (
    decode_interaction,
    decode_results,
    encode_interaction,
    encode_results,
    results_signature,
)
from repro.serving.registry import EngineHost, ServedSession, SessionRegistry
from repro.serving.server import DashboardServer, ServerReply, ServingClient

__all__ = [
    "AdmissionController",
    "CacheStats",
    "CrossSessionCache",
    "DashboardServer",
    "EngineHost",
    "InProcessClient",
    "LoadReport",
    "ServedSession",
    "ServerReply",
    "ServingApp",
    "ServingClient",
    "ServingConfig",
    "SessionRegistry",
    "SimulatedUser",
    "decode_interaction",
    "decode_results",
    "encode_interaction",
    "encode_results",
    "results_signature",
    "run_load",
]
