"""Unified execution policy for the whole query path.

Four PRs grew four execution knobs — ``batch`` (shared scans),
``workers`` (scan-group overlap), ``shards`` (row-range partial-aggregate
splits), ``multiplan`` (combined passes for unfiltered groups) — and each
was threaded as its own keyword through every layer from
:meth:`~repro.engine.interface.Engine.execute_batch` up to the CLIs.
:class:`ExecutionPolicy` replaces that per-knob threading with one frozen
value that travels the stack intact: every entry point takes
``policy=``, and the old keywords survive only as a deprecation shim
(:func:`resolve_policy`) that maps them onto an equivalent policy.

Every knob combination still produces byte-identical results — the
policy changes *how* a refresh executes, never *what* it returns
(:mod:`repro.concurrency`, :mod:`repro.sharding`,
:mod:`repro.engine.multiplan` each document their piece of that
contract).

Validation happens once, at construction: ``shards > 1`` or
``multiplan=True`` without ``batch`` used to silently no-op ten layers
down (there are no scan groups to shard or combine outside batch mode);
``ExecutionPolicy`` now refuses the combination with a
:class:`~repro.errors.ConfigError`. The deprecated-kwarg shim instead
*warns* and drops the inert knobs, preserving the old observable
behavior for legacy callers.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError

#: The knob fields, in threading order (and the legacy keyword names).
POLICY_KNOBS = ("batch", "workers", "shards", "multiplan")

#: Accepted ``backend`` values: in-process thread pools, or worker
#: processes fed via shared memory (:mod:`repro.concurrency.procpool`).
BACKENDS = ("threads", "processes")

#: ``auto()`` never sizes the pool past this many workers — beyond it
#: the GIL-bound stores stop scaling and SQLite replica snapshots cost
#: more than the overlap buys at laptop scale.
AUTO_MAX_WORKERS = 8

#: ...and never below this many: threads overlap I/O and dispatch
#: latency even on one core, and a concurrent preset that silently
#: degenerates to one worker and one shard on a 1-CPU runner skips the
#: very machinery (cross-thread spans, shard tasks) it was asked for.
AUTO_MIN_WORKERS = 4

#: ``auto()`` targets at least this many rows per shard; smaller tables
#: are not worth the per-shard scan/merge overhead.
AUTO_ROWS_PER_SHARD = 50_000


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batch of queries executes; never what it returns.

    The default policy routes through the shared-scan optimizer on a
    single worker — the exact ``execute_batch(queries)`` path. Fields
    mirror the four scale-out layers, bottom up:

    - ``batch`` — group the queries by (table, normalized filter) and
      run one shared scan per group (:mod:`repro.engine.batch`);
      ``False`` executes one engine call per query (the paper's
      sequential setup).
    - ``workers`` — overlap independent scan groups (or single queries
      in sequential mode) over a worker pool of this width
      (:mod:`repro.concurrency`).
    - ``shards`` — split each shardable group's base scan into this
      many row-range shard tasks merged via partial-aggregate rollup
      (:mod:`repro.sharding`). Batch-mode only.
    - ``multiplan`` — evaluate each unfiltered group's fusion classes
      in one combined pass (:mod:`repro.engine.multiplan`). Batch-mode
      only.
    - ``backend`` — where shard work runs: ``"threads"`` (the
      in-process worker pool) or ``"processes"`` (worker processes fed
      via shared-memory table exports,
      :mod:`repro.concurrency.procpool`), which overlaps *compute* for
      the GIL-bound pure-Python stores. Batch-mode only; engines that
      do not advertise ``supports_process_shards`` degrade to the
      thread backend.

    Future knobs (adaptive shard counts, cardinality-aware pass
    splitting, pipelined per-group merges — see ROADMAP.md) land here
    as new fields instead of new keywords on ten signatures.
    """

    batch: bool = True
    workers: int = 1
    shards: int = 1
    multiplan: bool = False
    backend: str = "threads"

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ConfigError("workers must be an integer >= 1")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ConfigError("shards must be an integer >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if not self.batch and self.shards > 1:
            raise ConfigError(
                "shards > 1 requires batch execution: row-range sharding "
                "splits scan groups, and sequential mode has none "
                "(pass batch=True, or shards=1)"
            )
        if not self.batch and self.multiplan:
            raise ConfigError(
                "multiplan=True requires batch execution: combined passes "
                "evaluate scan groups, and sequential mode has none "
                "(pass batch=True, or multiplan=False)"
            )
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"choose from {', '.join(BACKENDS)}"
            )
        if not self.batch and self.backend == "processes":
            raise ConfigError(
                "backend='processes' requires batch execution: process "
                "workers execute sharded scan groups, and sequential "
                "mode has none (pass batch=True, or backend='threads')"
            )

    # -- presets ------------------------------------------------------------

    @classmethod
    def serial(cls) -> "ExecutionPolicy":
        """One engine call per query — the paper's sequential setup."""
        return cls(batch=False)

    @classmethod
    def batched(cls) -> "ExecutionPolicy":
        """Shared scans on a single worker (the default policy)."""
        return cls()

    @classmethod
    def concurrent(cls, workers: int | None = None) -> "ExecutionPolicy":
        """Shared scans with scan groups overlapped over a worker pool.

        ``workers=None`` sizes the pool from ``os.cpu_count()``
        (clamped between :data:`AUTO_MIN_WORKERS` and
        :data:`AUTO_MAX_WORKERS`).
        """
        if workers is None:
            workers = _auto_workers()
        return cls(workers=workers)

    @classmethod
    def max_throughput(cls) -> "ExecutionPolicy":
        """Every optimization on, sized from ``os.cpu_count()``.

        Shared scans, a cpu-sized worker pool (floored at
        :data:`AUTO_MIN_WORKERS`, so 1-CPU runners still exercise real
        concurrency), one shard per worker, and combined multi-plan
        passes. Results are still byte-identical to :meth:`serial` —
        only wall-clock and scan counts change. The backend stays
        ``"threads"``; :meth:`auto` is the preset that inspects the
        engine and machine to pick processes.
        """
        workers = _auto_workers()
        return cls(workers=workers, shards=workers, multiplan=True)

    @classmethod
    def auto(
        cls, engine=None, table: str | None = None
    ) -> "ExecutionPolicy":
        """Size workers, shards, and the backend from machine and data.

        Workers come from ``os.cpu_count()`` (clamped between
        :data:`AUTO_MIN_WORKERS` and :data:`AUTO_MAX_WORKERS` — the
        floor keeps 1-CPU runners on a real concurrent configuration
        instead of silently degenerating to one worker and one shard).
        With an ``engine`` and a ``table`` name, shards are sized from
        the engine's
        :meth:`~repro.engine.interface.Engine.table_row_count` so each
        shard scans at least :data:`AUTO_ROWS_PER_SHARD` rows — small
        tables stay unsharded (the per-shard merge would cost more than
        the split saves), and the shard count never exceeds the worker
        count (extra shards would just queue). An engine that cannot
        report a row count (``table_row_count`` → ``None``) also stays
        unsharded, mirroring the sharded executor's own degradation.

        With an ``engine``, the backend becomes ``"processes"`` when
        the machine actually has more than one CPU *and* the engine
        advertises process-shard support
        (:func:`repro.concurrency.policy.process_shard_engine`) —
        worker processes overlap compute where threads only overlap
        I/O. Note the backend check uses the raw ``os.cpu_count()``,
        not the floored worker count: extra threads still help on one
        core, extra processes do not.
        """
        workers = _auto_workers()
        shards = 1
        backend = "threads"
        if engine is not None:
            if (os.cpu_count() or 1) > 1:
                from repro.concurrency.policy import process_shard_engine

                if process_shard_engine(engine) is not None:
                    backend = "processes"
            if table is not None:
                rows = engine.table_row_count(table)
                if rows:
                    shards = max(
                        1, min(workers, rows // AUTO_ROWS_PER_SHARD)
                    )
        return cls(
            workers=workers, shards=shards, multiplan=True, backend=backend
        )

    #: Preset names accepted by :meth:`preset` and the CLIs' ``--policy``.
    PRESETS = ("serial", "batch", "concurrent", "max-throughput", "auto")

    @classmethod
    def preset(cls, name: str) -> "ExecutionPolicy":
        """Resolve a named preset (the CLI ``--policy`` vocabulary)."""
        normalized = name.replace("_", "-").lower()
        if normalized == "serial":
            return cls.serial()
        if normalized == "batch":
            return cls.batched()
        if normalized == "concurrent":
            return cls.concurrent()
        if normalized == "max-throughput":
            return cls.max_throughput()
        if normalized == "auto":
            return cls.auto()
        raise ConfigError(
            f"unknown execution-policy preset {name!r}; "
            f"choose from {', '.join(cls.PRESETS)}"
        )

    # -- introspection ------------------------------------------------------

    def describe(self) -> str:
        """One-line human summary (CLIs print it, BENCH artifacts embed it)."""
        if not self.batch:
            if self.workers > 1:
                return (
                    f"sequential: one engine call per query, "
                    f"{self.workers} workers overlap independent queries"
                )
            return "sequential: one engine call per query"
        parts = ["batch: shared scans per (table, filter) group"]
        if self.workers > 1:
            parts.append(f"{self.workers} workers")
        if self.shards > 1:
            parts.append(f"{self.shards} row-range shards/group")
        if self.multiplan:
            parts.append("multiplan combined passes")
        if self.backend == "processes":
            parts.append("process-backed shards (shared memory)")
        return ", ".join(parts)

    def evolve(self, **changes: object) -> "ExecutionPolicy":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def knobs(self) -> dict[str, object]:
        """The policy as a plain knob mapping (artifact/config blocks)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _auto_workers() -> int:
    return max(
        AUTO_MIN_WORKERS, min(os.cpu_count() or 1, AUTO_MAX_WORKERS)
    )


def policy_from_knobs(
    batch: bool = True,
    workers: int = 1,
    shards: int = 1,
    multiplan: bool = False,
    *,
    backend: str = "threads",
    warn_ignored: bool = True,
    stacklevel: int = 2,
) -> ExecutionPolicy:
    """The policy equivalent to a legacy knob combination.

    Preserves the old stack's observable semantics: ``shards > 1`` or
    ``multiplan=True`` without ``batch`` used to silently do nothing
    (sequential execution has no scan groups), so the equivalent policy
    drops them — audibly, unless ``warn_ignored=False`` (internal
    equivalence checks compare silently).
    """
    if not batch and (shards > 1 or multiplan):
        if warn_ignored:
            ignored = []
            if shards > 1:
                ignored.append(f"shards={shards}")
            if multiplan:
                ignored.append("multiplan=True")
            warnings.warn(
                f"{' and '.join(ignored)} ignored without batch=True "
                f"(sequential execution has no scan groups to shard or "
                f"combine); pass an ExecutionPolicy to make this an error",
                UserWarning,
                stacklevel=stacklevel,
            )
        shards, multiplan = 1, False
    return ExecutionPolicy(
        batch=batch,
        workers=workers,
        shards=shards,
        multiplan=multiplan,
        backend=backend if batch else "threads",
    )


def coerce_policy(policy: "ExecutionPolicy | str") -> ExecutionPolicy:
    """Accept a policy or a preset name (the CLI/config surface)."""
    if isinstance(policy, str):
        return ExecutionPolicy.preset(policy)
    if not isinstance(policy, ExecutionPolicy):
        raise ConfigError(
            f"policy must be an ExecutionPolicy or a preset name, "
            f"got {policy!r}"
        )
    return policy


def resolve_policy(
    policy: "ExecutionPolicy | str | None",
    *,
    api: str,
    default: ExecutionPolicy | None = None,
    stacklevel: int = 3,
    **knobs: object,
) -> ExecutionPolicy:
    """One entry point's ``policy=`` / deprecated-kwarg resolution.

    ``knobs`` are the legacy keywords the entry point still accepts,
    with ``None`` meaning "not passed". Exactly one style may be used
    per call: a policy (object or preset name), or legacy knobs (which
    warn :class:`DeprecationWarning` at the *caller's* location —
    ``stacklevel=3`` assumes ``resolve_policy`` is called directly by
    the public entry point). With neither, ``default`` applies — each
    entry point passes its historical default so old call sites keep
    their exact behavior.
    """
    given = {k: v for k, v in knobs.items() if v is not None}
    if policy is not None:
        if given:
            raise ConfigError(
                f"{api}: pass either policy= or the deprecated "
                f"{', '.join(sorted(given))} keyword(s), not both"
            )
        return coerce_policy(policy)
    base = default if default is not None else ExecutionPolicy()
    if not given:
        return base
    warnings.warn(
        f"{api}: the {', '.join(sorted(given))} keyword(s) are "
        f"deprecated; pass policy=repro.ExecutionPolicy(...) (or a "
        f"preset such as ExecutionPolicy.concurrent(4)) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    merged = base.knobs()
    merged.update(given)
    # One more frame than our own warning: policy_from_knobs warns from
    # inside its own call.
    return policy_from_knobs(stacklevel=stacklevel + 1, **merged)


def compose_cli_policy(
    preset: str | None,
    *,
    base: ExecutionPolicy | None = None,
    batch: bool | None = None,
    workers: int | None = None,
    shards: int | None = None,
    multiplan: bool | None = None,
    backend: str | None = None,
) -> ExecutionPolicy | None:
    """Compose a CLI's ``--policy`` preset with explicit per-knob flags.

    The individual flags remain first-class CLI surface (not
    deprecated): each one given overrides the corresponding preset
    field, starting from ``base`` (the CLI's historical default) when
    no preset was named. Returns ``None`` when the caller passed
    nothing at all, so the downstream config's own default applies.
    Invalid compositions (``--shards 4`` without batch mode) raise
    :class:`~repro.errors.ConfigError` — the old stack's silent no-op,
    made audible.
    """
    flags = {
        k: v
        for k, v in (
            ("batch", batch),
            ("workers", workers),
            ("shards", shards),
            ("multiplan", multiplan),
            ("backend", backend),
        )
        if v is not None
    }
    if preset is not None:
        base = ExecutionPolicy.preset(preset)
    elif not flags:
        return None
    elif base is None:
        base = ExecutionPolicy.serial()
    return base.evolve(**flags) if flags else base


def reconcile_config_policy(
    policy: "ExecutionPolicy | str | None",
    knobs: dict[str, object],
    *,
    defaults: dict[str, object],
    api: str,
    stacklevel: int = 4,
) -> tuple[ExecutionPolicy, dict[str, object]]:
    """Policy resolution for config dataclasses with legacy knob *fields*.

    Unlike function keywords, :class:`SessionConfig`-style configs give
    their legacy knob fields real defaults, so "not passed" means
    "equal to the default". Returns ``(policy, field_values)``: the
    effective policy plus the values the legacy fields should carry —
    the caller's own values when it set any (so old readers observe
    exactly what was written, even for combinations the old stack
    silently ignored), the policy's values otherwise.

    A policy alongside *conflicting* legacy values is a
    :class:`~repro.errors.ConfigError`; alongside *equivalent* values
    it is accepted silently, which keeps ``dataclasses.replace``
    round-trips (policy and mirrored fields travel together) warning-free.
    """
    given = {k: v for k, v in knobs.items() if v != defaults[k]}
    if policy is None:
        if not given:
            return ExecutionPolicy(**knobs), dict(knobs)
        warnings.warn(
            f"{api}: setting {', '.join(sorted(given))} directly is "
            f"deprecated; pass policy=repro.ExecutionPolicy(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return (
            policy_from_knobs(stacklevel=stacklevel + 1, **knobs),
            dict(knobs),
        )
    resolved = coerce_policy(policy)
    if given:
        # A knob equal to the policy's own field is its mirror riding
        # along, not a conflict. A mismatched one is still accepted
        # when the whole knob combination is *equivalent* to the
        # policy after the legacy downgrade (the silently-ignored
        # shards/multiplan-without-batch shape keeps its written field
        # values). Only a combination that would execute differently
        # conflicts.
        mismatched = {
            k: v for k, v in given.items() if v != getattr(resolved, k)
        }
        if mismatched:
            equivalent = policy_from_knobs(warn_ignored=False, **knobs)
            if equivalent != resolved:
                raise ConfigError(
                    f"{api}: policy= conflicts with the deprecated "
                    f"{', '.join(sorted(mismatched))} field(s); set only "
                    f"policy"
                )
        # Fields the caller set keep their written values; unset ones
        # mirror the policy, so reads stay coherent either way. Only
        # the caller's own knob keys come back — the configs mirror the
        # legacy fields, not newer policy fields like ``backend``.
        merged = {k: getattr(resolved, k) for k in knobs}
        merged.update(given)
        return resolved, merged
    return resolved, {k: getattr(resolved, k) for k in knobs}


__all__ = [
    "AUTO_MAX_WORKERS",
    "AUTO_MIN_WORKERS",
    "AUTO_ROWS_PER_SHARD",
    "BACKENDS",
    "ExecutionPolicy",
    "POLICY_KNOBS",
    "coerce_policy",
    "compose_cli_policy",
    "policy_from_knobs",
    "reconcile_config_policy",
    "resolve_policy",
]
