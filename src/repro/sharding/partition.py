"""Row-range table partitioning for sharded scan execution.

A shard is a contiguous range of base-table row positions. Contiguity
is what makes sharded execution provably order-preserving: every engine
in this system scans base tables in row order, so the concatenation of
per-shard scan results *is* the unsharded scan, and first-occurrence
group orders compose across shards (see
:mod:`repro.sharding.executor` for the full argument).

The :class:`Partitioner` splits ``num_rows`` into ``shards`` near-equal
ranges using the classic balanced formula ``start_i = n*i // s`` —
deterministic, covering every row exactly once, and degrading to empty
trailing ranges when there are more shards than rows (an empty shard is
a valid unit of work: its partial aggregates are the aggregates of zero
rows, which the rollup merges away).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class RowRange:
    """A half-open range ``[start, stop)`` of base-table row positions."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ConfigError(
                f"invalid row range [{self.start}, {self.stop})"
            )

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    @property
    def is_empty(self) -> bool:
        return self.stop == self.start

    def __repr__(self) -> str:
        return f"RowRange({self.start}, {self.stop})"


class Partitioner:
    """Splits tables into ``shards`` contiguous, near-equal row ranges."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigError("shard count must be >= 1")
        self.shards = shards

    def split(self, num_rows: int) -> list[RowRange]:
        """The shard plan for a table of ``num_rows`` rows.

        Ranges are disjoint, ordered, and cover ``[0, num_rows)``
        exactly; sizes differ by at most one row. With more shards than
        rows, the trailing ranges are empty.
        """
        if num_rows < 0:
            raise ConfigError("num_rows must be >= 0")
        shards = self.shards
        return [
            RowRange(num_rows * i // shards, num_rows * (i + 1) // shards)
            for i in range(shards)
        ]


__all__ = ["Partitioner", "RowRange"]
