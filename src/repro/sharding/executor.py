"""Sharded execution of one scan group: per-shard scans + one merge.

A shardable scan group stops being "one task": it becomes one
*scan task per shard* — materialize the shard's filtered row range
(shard-aware ``materialize_filtered``), run every fusion class's
partial query over it — plus one *merge step* that concatenates the
per-shard partial rows (in shard order) and re-aggregates them through
the engine itself. The scheduling substrate is unchanged: each scan
task is an ordinary unit of work for the concurrency layer's
``WorkerPool`` / ``execution_slot`` machinery, exactly like an
unsharded group.

Why the result is byte-identical to unsharded execution:

- **Row coverage.** :class:`~repro.sharding.partition.RowRange` shards
  are contiguous, disjoint, and cover the table, so the multiset of
  rows feeding the aggregates is identical.
- **Group ordering.** Every engine here orders GROUP BY output either
  by key value (SQLite's sorter, the matstore's sort-based grouping,
  the vectorstore's ``np.unique`` path) or by first occurrence in scan
  order (the rowstore's dict, the vectorstore's hash loop). Key-sorted
  orders are position-independent, so re-aggregating partials trivially
  reproduces them. First-occurrence orders compose because shards are
  contiguous: a key first seen in shard *i* precedes, in base order,
  every key first seen in shard *j > i*; concatenating per-shard
  partials in shard order therefore presents first occurrences to the
  merge aggregation in exactly the base table's first-occurrence order.
- **Values, types, names.** The merge runs *on the engine*, with the
  rollup's merge expressions (COUNT/SUM partials via SUM, MIN/MAX via
  themselves, AVG as ``SUM(sums) * 1.0 / SUM(counts)``), so arithmetic
  promotion, NULL handling, and output naming are the engine's own.
  See :class:`~repro.engine.batch.AggregateRollup` for the exactness
  boundary on floating-point SUM/AVG.

Thread-safety contract: each scan task writes only its own
``(class, shard)`` slots of the partial matrix and runs engine calls
leaf-granularly (the executor hands this module a slot-gated engine),
so scan tasks for one group — and for different groups — interleave
freely. The merge step runs after every scan task of the group has
settled, on a single thread, and is the only writer of the group's
member positions in the shared results list. Cache stores carry the
epoch captured before any engine work, so a table invalidated
mid-flight drops the store instead of caching vanished data.

Known boundary vs unsharded execution: an unsharded group runs on one
thread, so SQLite's pinned replica gives it a consistent snapshot even
if the base table is reloaded mid-group. A *sharded* group's scan
tasks run on several threads whose replicas may straddle a concurrent
``load_table``, so that one batch can observe a mix of old and new
table versions — returned to the caller, though never cached (the
epoch moved, so the store is dropped). Serving workloads here load
tables before queries, making the window academic; a coordinated
cross-thread snapshot would close it if that ever changes.
"""

from __future__ import annotations

import time

from repro.engine.batch import (
    AggregateRollup,
    BatchStats,
    ScanGroup,
    _FusionClass,
    build_rollup,
    fuse_members,
    unique_temp_name,
)
from repro.engine.interface import QueryResult, ResultSet
from repro.errors import ExecutionError
from repro.sharding.partition import Partitioner, RowRange
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace


def _adopt_remote_spans(tracer, shard_span, payload) -> None:
    """Re-anchor worker-recorded span tuples under the parent shard span.

    Workers report ``(name, start_offset_ms, end_offset_ms, attrs)``
    relative to their task start (their clock is not the parent's);
    anchoring the offsets to the shard span's start keeps the tree
    causally ordered in the parent's timeline. ``end_ms`` is set
    directly — these spans were already closed remotely.
    """
    for name, start_offset, end_offset, attrs in payload.spans:
        child = tracer.begin(name, parent=shard_span, **attrs)
        child.start_ms = shard_span.start_ms + start_offset
        child.end_ms = shard_span.start_ms + end_offset
        child.thread = f"pid-{payload.pid}"


def _materialize_shard(engine, signature, predicate, row_range, shard) -> str:
    """Materialize one shard's filtered row range; returns the temp name.

    :func:`plan_sharded_group` gates on ``table_row_count``, and
    engines that report a row count must honor row ranges — failure
    here means the engine broke that contract.
    """
    temp = unique_temp_name(signature.table, signature.predicate_key)
    if not engine.materialize_filtered(
        temp,
        signature.table,
        predicate,
        row_range=(row_range.start, row_range.stop),
    ):
        raise ExecutionError(
            f"engine cannot materialize shard {shard} of "
            f"{signature.table!r}"
        )
    return temp


class ShardedGroupRun:
    """One scan group's sharded execution state.

    Built by :func:`plan_sharded_group`; the concurrent executor turns
    :meth:`scan_tasks` into pool units and calls :meth:`merge` once
    they have all settled.
    """

    def __init__(
        self,
        executor,  # ScanGroupExecutor (duck-typed; avoids a cyclic import)
        group: ScanGroup,
        classes: list[_FusionClass],
        rollups: list[AggregateRollup],
        ranges: list[RowRange],
        epoch: object,
    ) -> None:
        self._executor = executor
        self._group = group
        self._classes = classes
        self._rollups = rollups
        self._ranges = ranges
        self._epoch = epoch
        signature = group.signature
        assert signature is not None
        self._signature = signature
        self._predicate = (
            group.members[0].query.where if group.members else None
        )
        # Disjoint (class, shard) slots: scan tasks on different
        # threads never write the same cell, so no locking is needed.
        self._partials: list[list[ResultSet | None]] = [
            [None] * len(ranges) for _ in classes
        ]
        self._partial_ms: list[list[float]] = [
            [0.0] * len(ranges) for _ in classes
        ]
        self._scan_ms: list[float] = [0.0] * len(ranges)
        # The group span opens here, at plan time on the calling thread
        # (under the refresh's context), and closes in merge() — its
        # lifetime crosses threads, so shard tasks parent to it
        # explicitly instead of through the context.
        self._tracer = _trace.ACTIVE
        self._span = None
        if self._tracer is not None and classes:
            self._span = self._tracer.begin(
                "scan_group",
                table=signature.table,
                group_key=signature.predicate_key,
                members=len(group.members),
                shards=len(ranges),
                sharded=True,
            )

    @property
    def table(self) -> str:
        return self._signature.table

    def scan_tasks(self):
        """One callable per shard; each returns its stats delta.

        Empty when every member was served from the scan-group cache
        at plan time — a fully warm repeat refresh must not submit
        no-op tasks to the pool.
        """
        if not self._classes:
            return []
        return [
            (lambda shard=shard: self._scan(shard))
            for shard in range(len(self._ranges))
        ]

    def remote_jobs(self, export):
        """One :class:`ShardJob` per shard, for process-backed dispatch.

        Empty exactly when :meth:`scan_tasks` is (fully cache-served).
        The parent pre-builds the partial queries — temp names come
        from its process-wide sequence, so worker-side relations can
        never collide with parent-side ones.
        """
        if not self._classes:
            return []
        from repro.concurrency.procpool import ShardJob

        signature = self._signature
        jobs = []
        for shard, row_range in enumerate(self._ranges):
            temp = unique_temp_name(signature.table, signature.predicate_key)
            jobs.append(
                ShardJob(
                    export_id=export.spec.export_id,
                    version=export.spec.version,
                    table=signature.table,
                    shard=shard,
                    start=row_range.start,
                    stop=row_range.stop,
                    temp=temp,
                    queries=tuple(
                        rollup.partial_query(temp, signature.table)
                        for rollup in self._rollups
                    ),
                    predicate=self._predicate,
                )
            )
        return jobs

    def begin_remote(self, shard: int):
        """Open the parent-side span for a process-dispatched shard."""
        if self._tracer is None:
            return None
        row_range = self._ranges[shard]
        return self._tracer.begin(
            f"shard[{shard}]",
            parent=self._span,
            shard=shard,
            rows=f"{row_range.start}:{row_range.stop}",
            backend="processes",
        )

    def accept_remote(self, shard: int, payload, span) -> BatchStats:
        """Install one worker payload into this run's partial matrix."""
        stats = BatchStats()
        for index in range(len(self._rollups)):
            self._partials[index][shard] = payload.partials[index]
            self._partial_ms[index][shard] = payload.partial_ms[index]
        self._scan_ms[shard] = payload.scan_ms
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.observe(
                "shard.scan_ms",
                payload.scan_ms,
                table=self._signature.table,
            )
        stats.base_scans += 1
        stats.shard_scans += 1
        stats.proc_shard_scans += 1
        if span is not None:
            span.attrs["scan_ms"] = round(payload.scan_ms, 3)
            span.attrs["pid"] = payload.pid
            _adopt_remote_spans(self._tracer, span, payload)
            # repro: allow(RA102) — span was created by this run's own
            # tracer.begin() at submit time, so span non-None implies
            # the tracer is bound; the guard is one call away in the
            # remote-collection path, out of lexical reach.
            self._tracer.finish(span)
        return stats

    def _scan(self, shard: int) -> BatchStats:
        """Materialize one shard's rows and run every partial query."""
        stats = BatchStats()
        engine = self._executor.engine
        tracer = self._tracer
        span = None
        if tracer is not None:
            row_range = self._ranges[shard]
            span = tracer.begin(
                f"shard[{shard}]",
                parent=self._span,
                shard=shard,
                rows=f"{row_range.start}:{row_range.stop}",
            )
        try:
            start = time.perf_counter()
            temp = _materialize_shard(
                engine, self._signature, self._predicate,
                self._ranges[shard], shard,
            )
            self._scan_ms[shard] = (time.perf_counter() - start) * 1000.0
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.observe(
                    "shard.scan_ms",
                    self._scan_ms[shard],
                    table=self._signature.table,
                )
            stats.base_scans += 1
            stats.shard_scans += 1
            try:
                for index, rollup in enumerate(self._rollups):
                    timed = engine.execute_timed(
                        rollup.partial_query(temp, self._signature.table)
                    )
                    self._partials[index][shard] = timed.result
                    self._partial_ms[index][shard] = timed.duration_ms
            finally:
                try:
                    engine.unload_table(temp)
                except ExecutionError:
                    pass  # engine keeps the temp; next load replaces it
        finally:
            if span is not None:
                span.attrs["scan_ms"] = round(self._scan_ms[shard], 3)
                tracer.finish(span)
        return stats

    def merge(self, results: list[QueryResult | None]) -> BatchStats:
        """Roll every class's partials up into final member results."""
        stats = BatchStats()
        if not self._classes:
            return stats
        stats.sharded_groups = 1
        executor = self._executor
        engine = executor.engine
        signature = self._signature
        tracer = self._tracer
        merge_span = None
        if tracer is not None:
            merge_span = tracer.begin(
                "rollup_merge",
                parent=self._span,
                table=signature.table,
                classes=len(self._classes),
            )
        try:
            produced: dict[str, ResultSet] = {}
            member_count = sum(len(c.members) for c in self._classes)
            fetch_share = sum(self._scan_ms) / member_count
            for index, (cls, rollup) in enumerate(
                zip(self._classes, self._rollups)
            ):
                partials = self._partials[index]
                assert all(p is not None for p in partials)
                duration_ms = sum(self._partial_ms[index])
                if not any(p.rows for p in partials):
                    # A grouped aggregate over zero qualifying rows: no
                    # groups anywhere, so the merge relation would be empty
                    # — skip the engine round trip.
                    merged = rollup.empty_result()
                else:
                    relation = unique_temp_name(
                        signature.table, signature.predicate_key
                    )
                    engine.load_table(rollup.partial_table(relation, partials))
                    try:
                        timed = engine.execute_timed(
                            rollup.merge_query(relation)
                        )
                    finally:
                        try:
                            engine.unload_table(relation)
                        except ExecutionError:
                            pass
                    merged = timed.result
                    duration_ms += timed.duration_ms
                executor._distribute(
                    cls, merged, duration_ms, fetch_share, results, produced,
                    tier="sharded",
                )
            if executor.group_cache is not None and produced:
                executor.group_cache.store(
                    signature.table,
                    signature.predicate_key,
                    produced,
                    epoch=self._epoch,
                )
        finally:
            if tracer is not None:
                tracer.finish(merge_span)
                if self._span is not None:
                    tracer.finish(self._span)
        return stats


class MultiPlanShardedRun:
    """One scan group's sharded *multi-plan* execution state.

    The multiplan × shards composition: each shard task materializes
    its filtered row range and runs **one combined finest-grouping
    query** (:class:`~repro.engine.multiplan.MultiPlan`) over it —
    instead of one partial query per fusion class — and the merge step
    concatenates the per-shard finest partials in shard order, loads
    them once, and derives every class's result with its own merge
    query. Correctness follows from the same two arguments
    independently established for sharding and for multiplan: the
    finest partials concatenated in shard order preserve
    first-occurrence composition (shards are contiguous), and each
    class's merge re-aggregates its key subset through the engine
    itself. Thread-safety mirrors :class:`ShardedGroupRun`: scan tasks
    write disjoint per-shard slots, the merge runs single-threaded
    after all tasks settle, and cache stores carry the pre-captured
    epoch.
    """

    def __init__(
        self,
        executor,  # ScanGroupExecutor (duck-typed; avoids a cyclic import)
        group: ScanGroup,
        classes: list[_FusionClass],
        plan,  # repro.engine.multiplan.MultiPlan
        ranges: list[RowRange],
        epoch: object,
    ) -> None:
        self._executor = executor
        self._group = group
        self._classes = classes
        self._plan = plan
        self._ranges = ranges
        self._epoch = epoch
        signature = group.signature
        assert signature is not None
        self._signature = signature
        self._predicate = (
            group.members[0].query.where if group.members else None
        )
        # Disjoint per-shard slots: scan tasks on different threads
        # never write the same cell, so no locking is needed.
        self._partials: list[ResultSet | None] = [None] * len(ranges)
        self._scan_ms: list[float] = [0.0] * len(ranges)
        # Cross-thread group span, as in ShardedGroupRun: opened at
        # plan time on the caller, closed by merge().
        self._tracer = _trace.ACTIVE
        self._span = None
        if self._tracer is not None:
            self._span = self._tracer.begin(
                "scan_group",
                table=signature.table,
                group_key=signature.predicate_key,
                members=len(group.members),
                shards=len(ranges),
                sharded=True,
                multiplan=True,
            )

    @property
    def table(self) -> str:
        return self._signature.table

    def scan_tasks(self):
        """One callable per shard; each returns its stats delta.

        Unlike :class:`ShardedGroupRun`, this is never empty: the
        planner only builds a multiplan run for two or more classes
        left after cache serving (a fully warm group never gets here).
        """
        return [
            (lambda shard=shard: self._scan(shard))
            for shard in range(len(self._ranges))
        ]

    def remote_jobs(self, export):
        """One :class:`ShardJob` per shard: the single combined query."""
        from repro.concurrency.procpool import ShardJob

        signature = self._signature
        jobs = []
        for shard, row_range in enumerate(self._ranges):
            temp = unique_temp_name(signature.table, signature.predicate_key)
            jobs.append(
                ShardJob(
                    export_id=export.spec.export_id,
                    version=export.spec.version,
                    table=signature.table,
                    shard=shard,
                    start=row_range.start,
                    stop=row_range.stop,
                    temp=temp,
                    queries=(
                        self._plan.combined_query(
                            temp, alias=signature.table
                        ),
                    ),
                    predicate=self._predicate,
                )
            )
        return jobs

    def begin_remote(self, shard: int):
        """Open the parent-side span for a process-dispatched shard."""
        if self._tracer is None:
            return None
        row_range = self._ranges[shard]
        return self._tracer.begin(
            f"shard[{shard}]",
            parent=self._span,
            shard=shard,
            rows=f"{row_range.start}:{row_range.stop}",
            backend="processes",
            multiplan=True,
        )

    def accept_remote(self, shard: int, payload, span) -> BatchStats:
        """Install one worker payload into this run's partial slots."""
        stats = BatchStats()
        self._partials[shard] = payload.partials[0]
        # One shared pass per shard, as on the thread path: its query
        # time pools with the scan for fetch-share accounting.
        self._scan_ms[shard] = payload.scan_ms + payload.partial_ms[0]
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.observe(
                "shard.scan_ms",
                self._scan_ms[shard],
                table=self._signature.table,
            )
        stats.base_scans += 1
        stats.shard_scans += 1
        stats.proc_shard_scans += 1
        if span is not None:
            span.attrs["scan_ms"] = round(self._scan_ms[shard], 3)
            span.attrs["pid"] = payload.pid
            _adopt_remote_spans(self._tracer, span, payload)
            # repro: allow(RA102) — as in ShardedGroupRun.accept_remote:
            # span non-None implies the plan-time tracer is bound; the
            # None-guard lives in the caller that minted the span.
            self._tracer.finish(span)
        return stats

    def _scan(self, shard: int) -> BatchStats:
        """Materialize one shard's rows, run the one combined query."""
        stats = BatchStats()
        engine = self._executor.engine
        tracer = self._tracer
        span = None
        if tracer is not None:
            row_range = self._ranges[shard]
            span = tracer.begin(
                f"shard[{shard}]",
                parent=self._span,
                shard=shard,
                rows=f"{row_range.start}:{row_range.stop}",
                multiplan=True,
            )
        try:
            start = time.perf_counter()
            temp = _materialize_shard(
                engine, self._signature, self._predicate,
                self._ranges[shard], shard,
            )
            stats.base_scans += 1
            stats.shard_scans += 1
            try:
                timed = engine.execute_timed(
                    self._plan.combined_query(
                        temp, alias=self._signature.table
                    )
                )
                self._partials[shard] = timed.result
                # One shared pass per shard: its cost pools with the scan
                # (split evenly across members at merge time), mirroring
                # how the unsharded shared scan charges its members.
                self._scan_ms[shard] = (
                    (time.perf_counter() - start) * 1000.0
                )
                registry = _metrics.ACTIVE
                if registry is not None:
                    registry.observe(
                        "shard.scan_ms",
                        self._scan_ms[shard],
                        table=self._signature.table,
                    )
            finally:
                try:
                    engine.unload_table(temp)
                except ExecutionError:
                    pass  # engine keeps the temp; next load replaces it
        finally:
            if span is not None:
                span.attrs["scan_ms"] = round(self._scan_ms[shard], 3)
                tracer.finish(span)
        return stats

    def merge(self, results: list[QueryResult | None]) -> BatchStats:
        """Derive every class's result from the concatenated partials."""
        stats = BatchStats()
        stats.sharded_groups = 1
        stats.multiplan_groups = 1
        stats.multiplan_plans = len(self._classes)
        executor = self._executor
        engine = executor.engine
        signature = self._signature
        plan = self._plan
        partials = self._partials
        assert all(p is not None for p in partials)
        tracer = self._tracer
        merge_span = None
        if tracer is not None:
            merge_span = tracer.begin(
                "rollup_merge",
                parent=self._span,
                table=signature.table,
                classes=len(self._classes),
                multiplan=True,
            )
        try:
            produced: dict[str, ResultSet] = {}
            member_count = sum(len(c.members) for c in self._classes)
            fetch_share = sum(self._scan_ms) / member_count
            if not any(p.rows for p in partials):
                # Zero qualifying rows anywhere. (Unreachable when every
                # plan is global: a keyless combined query always yields a
                # row per shard.)
                from repro.engine.multiplan import serve_empty_group

                serve_empty_group(
                    executor, self._classes, plan.plans, fetch_share,
                    results, produced, stats,
                )
            else:
                relation = unique_temp_name(
                    signature.table, signature.predicate_key
                )
                engine.load_table(plan.partial_table(relation, partials))
                try:
                    for cls, plan_merge in zip(self._classes, plan.plans):
                        timed = engine.execute_timed(
                            plan_merge.merge_query(relation)
                        )
                        executor._distribute(
                            cls, timed.result, timed.duration_ms,
                            fetch_share, results, produced,
                            tier="multiplan",
                        )
                finally:
                    try:
                        engine.unload_table(relation)
                    except ExecutionError:
                        pass
            if executor.group_cache is not None and produced:
                executor.group_cache.store(
                    signature.table,
                    signature.predicate_key,
                    produced,
                    epoch=self._epoch,
                )
        finally:
            if tracer is not None:
                tracer.finish(merge_span)
                if self._span is not None:
                    tracer.finish(self._span)
        return stats


def plan_sharded_group(
    executor,
    group: ScanGroup,
    partitioner: Partitioner,
    results: list[QueryResult | None],
    stats: BatchStats,
    multiplan: bool | None = None,
) -> "ShardedGroupRun | MultiPlanShardedRun | None":
    """A sharded run for ``group``, or ``None``.

    ``None`` means the group cannot shard — no scan signature (joins),
    an engine that cannot report row counts / materialize row ranges,
    or any fusion class whose merged query has no partial-aggregate
    rollup — and must take the pre-existing one-task path. The decision
    is made *before* touching the scan-group cache, so a ``None``
    here leaves all cache accounting to the unsharded path.

    When the group shards, cache-served members are answered
    immediately (into ``results``/``stats``, mirroring the unsharded
    path) and only the remaining members are planned for execution.

    ``multiplan`` (``None`` defers to ``executor.multiplan``) upgrades
    a group of two or more combinable classes to a
    :class:`MultiPlanShardedRun` — one combined pass per shard instead
    of one partial query per (class, shard); anything the combined
    planner declines keeps the per-class :class:`ShardedGroupRun`.
    """
    signature = group.signature
    if signature is None:
        return None
    epoch = None
    if executor.group_cache is not None:
        # Captured before ANY engine-state read — including the row
        # count below. A table swapped between reading its extent and
        # capturing the epoch would otherwise let stale-range results
        # into the cache with a fresh epoch.
        epoch = executor.group_cache.epoch(signature.table)
    engine = executor.engine
    row_count = engine.table_row_count(signature.table)
    if row_count is None:
        return None
    # Shardability is a member-level property (naming-safe aggregate
    # queries without HAVING/ORDER BY/LIMIT/DISTINCT), so checking the
    # full member set also answers for any cache-remainder subset.
    if any(
        build_rollup(cls.merged_query()) is None
        for cls in fuse_members(group.members)
    ):
        return None
    pending = group.members
    if executor.group_cache is not None:
        pending = executor._serve_cached(signature, pending, results, stats)
    classes = fuse_members(pending)
    stats.fused_queries += len(pending) - len(classes)
    combine = (
        getattr(executor, "multiplan", False)
        if multiplan is None
        else multiplan
    )
    # The multiplan tier covers *unfiltered* groups only, here exactly
    # as in the unsharded executor — filtered groups keep the per-class
    # rollup (combined passes over filtered groups are ROADMAP future
    # work). A group with an ineligible class never reaches this point:
    # the build_rollup gate above already returned None, and the
    # one-task fallback still applies the unsharded multiplan tier to
    # the eligible subset.
    if (
        combine
        and len(classes) > 1
        and pending
        and pending[0].query.where is None
    ):
        from repro.engine.multiplan import build_multiplan

        combined = build_multiplan([cls.merged_query() for cls in classes])
        if combined is not None:
            return MultiPlanShardedRun(
                executor,
                group,
                classes,
                combined,
                partitioner.split(row_count),
                epoch,
            )
    rollups = []
    for cls in classes:
        rollup = build_rollup(cls.merged_query())
        assert rollup is not None  # subset of a fully shardable group
        rollups.append(rollup)
    return ShardedGroupRun(
        executor,
        group,
        classes,
        rollups,
        partitioner.split(row_count),
        epoch,
    )


__all__ = ["MultiPlanShardedRun", "ShardedGroupRun", "plan_sharded_group"]
