"""Sharded scan execution: row-range partitioning + partial-agg rollup.

The third rung of the scale-out progression (batch -> async ->
**sharded**). The batch layer collapsed a dashboard refresh into a few
shared scans; the concurrency layer overlapped independent scan groups;
this package splits each scan group's *base scan itself* across
contiguous row-range shards so a single large table no longer executes
as one monolithic task:

- :mod:`repro.sharding.partition` — :class:`Partitioner` /
  :class:`RowRange`, the deterministic near-equal contiguous split.
- :mod:`repro.sharding.executor` — :class:`ShardedGroupRun`, the
  per-(group, shard) scan tasks plus the merge step that re-aggregates
  per-shard partials through the engine; :class:`MultiPlanShardedRun`,
  the multiplan × shards composition (one combined finest-grouping
  pass per shard, see :mod:`repro.engine.multiplan`); and
  :func:`plan_sharded_group`, the shardability gate.

The aggregate decomposition itself (AVG into SUM/COUNT, the merge
expressions) lives in the fusion layer —
:func:`repro.engine.batch.build_rollup` — next to the query fusion it
extends. The scheduling seam is
:class:`~repro.concurrency.executor.ScanGroupExecutor`, whose
``shards`` parameter replaces "one task per group" with "one task per
(group, shard), then merge"; ``shards=1`` is byte-for-byte the
pre-existing path.
"""

from repro.sharding.executor import (
    MultiPlanShardedRun,
    ShardedGroupRun,
    plan_sharded_group,
)
from repro.sharding.partition import Partitioner, RowRange

__all__ = [
    "MultiPlanShardedRun",
    "Partitioner",
    "RowRange",
    "ShardedGroupRun",
    "plan_sharded_group",
]
