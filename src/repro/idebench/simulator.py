"""Reimplementation of IDEBench's stochastic workload generator.

The original benchmark draws a sequence of operations from fixed
probabilities: create a visualization over random columns, link two
visualizations, add/modify a filter, or remove one. Filters propagate
along links, and every affected visualization re-issues its aggregate
query. Nothing constrains the growing "dashboard" to resemble an
interface a designer would build — which is precisely the behaviour the
SIMBA paper critiques.

The defaults below reproduce the workload shape the paper reports for
50 IDEBench workflows over the IT Monitor dataset: ~13 visualizations
per workflow (min 7, max 20), ~9 visualization updates per interaction,
~2.1 data attributes and ~13.2 filters per visualization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.engine.interface import Engine, QueryResult
from repro.engine.table import Schema, Table
from repro.errors import SimulationError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expression,
    FuncCall,
    InList,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)

_AGGS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class IDEBenchConfig:
    """Operation probabilities of the stochastic process.

    The remaining probability mass (1 - create - link - remove) goes to
    the filter operation, IDEBench's dominant action.
    """

    p_create_viz: float = 0.24
    p_link: float = 0.12
    p_remove_filter: float = 0.10
    #: Links drawn from/to a newly created visualization (IDEBench wires
    #: new views into the existing crossfilter network immediately,
    #: which is what makes its dashboards densely linked).
    links_per_new_viz: int = 1
    max_visualizations: int = 20
    min_operations: int = 40
    max_operations: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.p_create_viz + self.p_link + self.p_remove_filter
        if total >= 1.0:
            raise SimulationError(
                "operation probabilities must leave mass for filters"
            )


@dataclass
class SimulatedViz:
    """One dynamically created visualization."""

    id: str
    dimensions: list[str]
    measure_agg: str
    measure_column: str | None
    filters: list[Expression] = field(default_factory=list)

    def query(self, table: str) -> Query:
        select: list[SelectItem] = [
            SelectItem(Column(d)) for d in self.dimensions
        ]
        if self.measure_column is None:
            measure: Expression = FuncCall("COUNT", (Star(),))
        else:
            measure = FuncCall(
                self.measure_agg, (Column(self.measure_column),)
            )
        select.append(SelectItem(measure, "measure"))
        where: Expression | None = None
        for predicate in self.filters:
            where = (
                predicate
                if where is None
                else BinaryOp("AND", where, predicate)
            )
        return Query(
            select=tuple(select),
            from_table=TableRef(table),
            where=where,
            group_by=tuple(Column(d) for d in self.dimensions),
        )


@dataclass
class IDEBenchWorkflow:
    """Result of one stochastic run: the grown 'dashboard' plus its log."""

    visualizations: list[SimulatedViz]
    links: list[tuple[str, str]]
    operations: int
    updates_per_interaction: list[int]
    queries: list[Query]
    timed: list[QueryResult] = field(default_factory=list)

    @property
    def num_visualizations(self) -> int:
        return len(self.visualizations)


class IDEBenchSimulator:
    """Grows a random linked-visualization workload over one dataset."""

    name = "idebench"

    def __init__(
        self,
        table: Table,
        config: IDEBenchConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.table = table
        self.config = config or IDEBenchConfig()
        self.engine = engine
        self.rng = random.Random(self.config.seed)
        self._viz_counter = 0

    def run(self) -> IDEBenchWorkflow:
        """Run one full stochastic workflow."""
        rng = self.rng
        config = self.config
        vizzes: list[SimulatedViz] = [self._create_viz()]
        links: list[tuple[str, str]] = []
        updates: list[int] = []
        queries: list[Query] = [vizzes[0].query(self.table.name)]
        operations = rng.randint(
            config.min_operations, config.max_operations
        )
        for _ in range(operations):
            draw = rng.random()
            if (
                draw < config.p_create_viz
                and len(vizzes) < config.max_visualizations
            ):
                viz = self._create_viz()
                # Wire the new visualization into the crossfilter network
                # in both directions, like IDEBench's linked views.
                existing = list(vizzes)
                vizzes.append(viz)
                for neighbor in rng.sample(
                    existing,
                    min(config.links_per_new_viz, len(existing)),
                ):
                    for link in ((neighbor.id, viz.id), (viz.id, neighbor.id)):
                        if link not in links:
                            links.append(link)
                # Creating a view renders it once; it is not an
                # "interaction" for the updates-per-interaction metric.
                queries.append(viz.query(self.table.name))
            elif draw < config.p_create_viz + config.p_link:
                if len(vizzes) >= 2:
                    source, target = rng.sample(vizzes, 2)
                    link = (source.id, target.id)
                    if link not in links:
                        links.append(link)
            elif (
                draw
                < config.p_create_viz
                + config.p_link
                + config.p_remove_filter
            ):
                candidates = [v for v in vizzes if v.filters]
                if candidates:
                    viz = rng.choice(candidates)
                    viz.filters.pop(
                        rng.randrange(len(viz.filters))
                    )
                    affected = self._propagate(viz, vizzes, links, None)
                    updates.append(len(affected))
                    queries.extend(
                        v.query(self.table.name) for v in affected
                    )
            else:
                viz = rng.choice(vizzes)
                predicate = self._random_filter()
                affected = self._propagate(viz, vizzes, links, predicate)
                updates.append(len(affected))
                queries.extend(
                    v.query(self.table.name) for v in affected
                )
        workflow = IDEBenchWorkflow(
            visualizations=vizzes,
            links=links,
            operations=operations,
            updates_per_interaction=updates,
            queries=queries,
        )
        if self.engine is not None:
            workflow.timed = [
                self.engine.execute_timed(q) for q in queries
            ]
        return workflow

    # -- operations -----------------------------------------------------------

    def _create_viz(self) -> SimulatedViz:
        rng = self.rng
        schema = self.table.schema
        groupable = schema.categorical_columns()
        numeric = schema.numeric_columns()
        dimension_count = rng.choice((1, 1, 2))  # mostly simple vizzes
        dimensions = rng.sample(
            groupable, min(dimension_count, len(groupable))
        )
        if numeric and rng.random() < 0.8:
            agg = rng.choice(_AGGS)
            column: str | None = rng.choice(numeric)
        else:
            agg = "COUNT"
            column = None
        self._viz_counter += 1
        return SimulatedViz(
            id=f"viz_{self._viz_counter}",
            dimensions=dimensions,
            measure_agg=agg,
            measure_column=column,
        )

    def _random_filter(self) -> Expression:
        """A random predicate over a random column (IDEBench-style)."""
        rng = self.rng
        schema = self.table.schema
        categorical = schema.categorical_columns()
        numeric = schema.numeric_columns()
        use_categorical = categorical and (
            not numeric or rng.random() < 0.6
        )
        if use_categorical:
            column = rng.choice(categorical)
            values = self.table.distinct_values(column)
            if not values:
                return BinaryOp("=", Column(column), Literal(None))
            count = rng.randint(1, min(3, len(values)))
            members = rng.sample(values, count)
            return InList(
                Column(column),
                tuple(Literal(m) for m in sorted(members, key=repr)),
            )
        column = rng.choice(numeric)
        low, high = self.table.column_extent(column)
        if low is None:
            return BinaryOp("=", Column(column), Literal(None))
        span = float(high) - float(low)  # type: ignore[arg-type]
        a = float(low) + rng.random() * span
        b = float(low) + rng.random() * span
        lo, hi = (a, b) if a <= b else (b, a)
        return Between(
            Column(column), Literal(round(lo, 4)), Literal(round(hi, 4))
        )

    def _propagate(
        self,
        source: SimulatedViz,
        vizzes: list[SimulatedViz],
        links: list[tuple[str, str]],
        predicate: Expression | None,
    ) -> list[SimulatedViz]:
        """Apply a filter to ``source`` and everything reachable from it."""
        by_id = {v.id: v for v in vizzes}
        reached: set[str] = set()
        frontier = [source.id]
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            # Crossfilter networks update in both directions: a brush in
            # either linked view refreshes the other.
            frontier.extend(t for s, t in links if s == current)
            frontier.extend(s for s, t in links if t == current)
        affected = [by_id[viz_id] for viz_id in sorted(reached)]
        if predicate is not None:
            for viz in affected:
                viz.filters.append(predicate)
        return affected
