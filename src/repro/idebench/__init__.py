"""IDEBench baseline: the fully stochastic comparator (paper §5, §6.3).

IDEBench (Eichmann et al., SIGMOD 2020) simulates interactive data
exploration as a purely stochastic process: visualizations are created,
linked, and filtered at random, *unconstrained by any dashboard
specification*. The paper uses this contrast to show that unconstrained
variance yields unrealistic workloads (Figure 9: reverse-engineered
IDEBench "dashboards" average 13 visualizations where the real IT
Monitor has 3, with ~9 visualization updates per interaction and 13.2
filters per visualization).
"""

from repro.idebench.analysis import (
    ReverseEngineeredStats,
    analyze_workflows,
    reverse_engineer,
)
from repro.idebench.simulator import (
    IDEBenchConfig,
    IDEBenchSimulator,
    IDEBenchWorkflow,
)

__all__ = [
    "IDEBenchConfig",
    "IDEBenchSimulator",
    "IDEBenchWorkflow",
    "ReverseEngineeredStats",
    "analyze_workflows",
    "reverse_engineer",
]
