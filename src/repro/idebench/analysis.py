"""Reverse-engineering IDEBench workflows into dashboard statistics.

The paper (§6.3, Figure 9) generates 50 IDEBench workflows for the IT
Monitor dataset and reverse engineers the dashboard each implies,
reporting visualization counts, link density, and per-visualization
attribute/filter statistics. This module computes the same aggregates
from :class:`~repro.idebench.simulator.IDEBenchWorkflow` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.idebench.simulator import IDEBenchWorkflow
from repro.metrics.workload_stats import MeanStd, _mean_std


@dataclass(frozen=True)
class ReverseEngineeredStats:
    """Aggregate dashboard statistics across a set of workflows."""

    workflows: int
    avg_visualizations: float
    min_visualizations: int
    max_visualizations: int
    updates_per_interaction: MeanStd
    attributes_per_viz: MeanStd
    filters_per_viz: MeanStd

    def as_row(self) -> dict[str, object]:
        return {
            "workflows": self.workflows,
            "avg_visualizations": round(self.avg_visualizations, 1),
            "min_visualizations": self.min_visualizations,
            "max_visualizations": self.max_visualizations,
            "updates_per_interaction": str(self.updates_per_interaction),
            "attributes_per_viz": str(self.attributes_per_viz),
            "filters_per_viz": str(self.filters_per_viz),
        }


def reverse_engineer(workflow: IDEBenchWorkflow) -> dict[str, float]:
    """Per-workflow dashboard statistics (one Figure 9 panel)."""
    viz_count = workflow.num_visualizations
    attributes = [
        float(len(v.dimensions) + (0 if v.measure_column is None else 1))
        for v in workflow.visualizations
    ]
    filters = [float(len(v.filters)) for v in workflow.visualizations]
    updates = [float(u) for u in workflow.updates_per_interaction]
    return {
        "visualizations": float(viz_count),
        "links": float(len(workflow.links)),
        "avg_attributes_per_viz": (
            sum(attributes) / len(attributes) if attributes else 0.0
        ),
        "avg_filters_per_viz": (
            sum(filters) / len(filters) if filters else 0.0
        ),
        "avg_updates_per_interaction": (
            sum(updates) / len(updates) if updates else 0.0
        ),
    }


def analyze_workflows(
    workflows: list[IDEBenchWorkflow],
) -> ReverseEngineeredStats:
    """Aggregate statistics across many workflows (the paper uses 50)."""
    per_workflow = [reverse_engineer(w) for w in workflows]
    viz_counts = [int(p["visualizations"]) for p in per_workflow]
    updates: list[float] = []
    for workflow in workflows:
        updates.extend(float(u) for u in workflow.updates_per_interaction)
    attributes: list[float] = []
    filters: list[float] = []
    for workflow in workflows:
        for viz in workflow.visualizations:
            attributes.append(
                float(
                    len(viz.dimensions)
                    + (0 if viz.measure_column is None else 1)
                )
            )
            filters.append(float(len(viz.filters)))
    return ReverseEngineeredStats(
        workflows=len(workflows),
        avg_visualizations=(
            sum(viz_counts) / len(viz_counts) if viz_counts else 0.0
        ),
        min_visualizations=min(viz_counts) if viz_counts else 0,
        max_visualizations=max(viz_counts) if viz_counts else 0,
        updates_per_interaction=_mean_std(updates),
        attributes_per_viz=_mean_std(attributes),
        filters_per_viz=_mean_std(filters),
    )
